//! Speed-aware diffusion matrices.
//!
//! The first- and second-order diffusion schemes of the paper are driven by a
//! stochastic matrix `P` with
//!
//! ```text
//! P[i][j] = α[i][j] / s[i]          for j ∈ N(i)
//! P[i][i] = 1 − Σ_{j ∈ N(i)} α[i][j] / s[i]
//! ```
//!
//! where the `α[i][j] = α[j][i]` are symmetric edge weights satisfying
//! `Σ_{j ∈ N(i)} α[i][j] < s[i]` for every node `i`. [`DiffusionMatrix`]
//! stores the per-edge `α` values together with node speeds and offers the
//! row-vector product `x ↦ x·P` that advances the continuous process.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};

/// Strategy for choosing the symmetric edge weights `α[i][j]`.
///
/// Both schemes reduce to the standard literature choices for unit speeds and
/// generalise to heterogeneous speeds by scaling with `min(s_i, s_j)`, which
/// preserves symmetry and keeps every row sum strictly below `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AlphaScheme {
    /// `α[i][j] = min(s_i, s_j) / (max(d_i, d_j) + 1)` — the common
    /// `1/(max(d_i, d_j) + 1)` choice for unit speeds.
    #[default]
    MaxDegreePlusOne,
    /// `α[i][j] = min(s_i, s_j) / (2 · max(d_i, d_j))` — the common
    /// `1/(2 · max(d_i, d_j))` choice for unit speeds. Guarantees `P` has
    /// diagonal entries at least 1/2, which keeps all eigenvalues
    /// non-negative (useful on bipartite graphs).
    Lazy,
}

impl AlphaScheme {
    /// Computes `α` for the edge `{i, j}` given degrees and speeds.
    pub fn alpha(self, deg_i: usize, deg_j: usize, speed_i: f64, speed_j: f64) -> f64 {
        let dmax = deg_i.max(deg_j) as f64;
        let smin = speed_i.min(speed_j);
        match self {
            AlphaScheme::MaxDegreePlusOne => smin / (dmax + 1.0),
            AlphaScheme::Lazy => smin / (2.0 * dmax),
        }
    }
}

/// A speed-aware diffusion matrix over a fixed graph.
///
/// The matrix does not own the graph; methods that need the topology take a
/// `&Graph` argument and debug-assert that its node and edge counts match the
/// ones captured at construction time.
///
/// # Examples
///
/// ```
/// use lb_graph::{generators, AlphaScheme, DiffusionMatrix};
///
/// let g = generators::cycle(4)?;
/// let speeds = vec![1.0; 4];
/// let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// let x = vec![4.0, 0.0, 0.0, 0.0];
/// let next = p.apply(&g, &x);
/// // Load is conserved by one diffusion step.
/// assert!((next.iter().sum::<f64>() - 4.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionMatrix {
    n: usize,
    m: usize,
    /// Per-edge symmetric weight `α_e`, indexed by [`EdgeId`].
    alphas: Vec<f64>,
    /// Node speeds (strictly positive).
    speeds: Vec<f64>,
    /// Diagonal entries `P[i][i]`.
    diagonal: Vec<f64>,
    scheme: AlphaScheme,
}

impl DiffusionMatrix {
    /// Builds the diffusion matrix for `graph` with the given `speeds` and
    /// `scheme`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `speeds.len()` does not
    /// match the node count or any speed is not strictly positive and finite.
    pub fn new(graph: &Graph, speeds: &[f64], scheme: AlphaScheme) -> Result<Self, GraphError> {
        if speeds.len() != graph.node_count() {
            return Err(GraphError::invalid_parameter(format!(
                "speeds length {} does not match node count {}",
                speeds.len(),
                graph.node_count()
            )));
        }
        if let Some((i, &s)) = speeds
            .iter()
            .enumerate()
            .find(|(_, &s)| !(s.is_finite() && s > 0.0))
        {
            return Err(GraphError::invalid_parameter(format!(
                "speed of node {i} must be positive and finite, got {s}"
            )));
        }
        let mut alphas = vec![0.0; graph.edge_count()];
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            alphas[e] = scheme.alpha(graph.degree(u), graph.degree(v), speeds[u], speeds[v]);
        }
        let mut diagonal = vec![0.0; graph.node_count()];
        for i in graph.nodes() {
            let outgoing: f64 = graph
                .neighbors_with_edges(i)
                .map(|(_, e)| alphas[e] / speeds[i])
                .sum();
            diagonal[i] = 1.0 - outgoing;
        }
        Ok(DiffusionMatrix {
            n: graph.node_count(),
            m: graph.edge_count(),
            alphas,
            speeds: speeds.to_vec(),
            diagonal,
            scheme,
        })
    }

    /// Convenience constructor for unit speeds.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DiffusionMatrix::new`]; with unit speeds this
    /// only happens for internal inconsistencies.
    pub fn uniform(graph: &Graph, scheme: AlphaScheme) -> Result<Self, GraphError> {
        Self::new(graph, &vec![1.0; graph.node_count()], scheme)
    }

    /// Number of nodes the matrix was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges the matrix was built for.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The `α` scheme used at construction.
    pub fn scheme(&self) -> AlphaScheme {
        self.scheme
    }

    /// The symmetric weight `α_e` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn alpha(&self, e: EdgeId) -> f64 {
        self.alphas[e]
    }

    /// All per-edge `α` values, indexed by [`EdgeId`].
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Node speeds captured at construction.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The diagonal entry `P[i][i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn diagonal(&self, i: NodeId) -> f64 {
        self.diagonal[i]
    }

    /// The off-diagonal entry `P[i][j] = α[i][j] / s_i` for an adjacent pair,
    /// or 0.0 for non-adjacent distinct nodes, or the diagonal for `i == j`.
    pub fn entry(&self, graph: &Graph, i: NodeId, j: NodeId) -> f64 {
        self.debug_check(graph);
        if i == j {
            return self.diagonal[i];
        }
        match graph.edge_between(i, j) {
            Some(e) => self.alphas[e] / self.speeds[i],
            None => 0.0,
        }
    }

    /// Computes the row-vector product `x · P`, i.e. one synchronous step of
    /// the continuous first-order diffusion on load vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the node count.
    pub fn apply(&self, graph: &Graph, x: &[f64]) -> Vec<f64> {
        self.debug_check(graph);
        assert_eq!(x.len(), self.n, "load vector length must equal node count");
        let mut out = vec![0.0; self.n];
        for i in 0..self.n {
            out[i] += x[i] * self.diagonal[i];
        }
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let a = self.alphas[e];
            // Mass flowing u -> v and v -> u.
            out[v] += x[u] * a / self.speeds[u];
            out[u] += x[v] * a / self.speeds[v];
        }
        out
    }

    /// Verifies that `P` is row-stochastic with non-negative entries, within
    /// floating-point tolerance. Mostly used by tests and debug assertions.
    pub fn is_stochastic(&self, graph: &Graph, tol: f64) -> bool {
        self.debug_check(graph);
        for i in 0..self.n {
            if self.diagonal[i] < -tol {
                return false;
            }
            let row_sum: f64 = self.diagonal[i]
                + graph
                    .neighbors_with_edges(i)
                    .map(|(_, e)| self.alphas[e] / self.speeds[i])
                    .sum::<f64>();
            if (row_sum - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    fn debug_check(&self, graph: &Graph) {
        debug_assert_eq!(
            graph.node_count(),
            self.n,
            "graph/matrix node count mismatch"
        );
        debug_assert_eq!(
            graph.edge_count(),
            self.m,
            "graph/matrix edge count mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_cycle_matrix_is_stochastic() {
        let g = generators::cycle(6).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert!(p.is_stochastic(&g, 1e-12));
        // Every edge weight is 1/(2+1).
        for e in 0..g.edge_count() {
            assert!((p.alpha(e) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!((p.diagonal(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_scheme_has_large_diagonal() {
        let g = generators::cycle(6).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::Lazy).unwrap();
        for i in g.nodes() {
            assert!(p.diagonal(i) >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn speeds_scale_rows_but_keep_alpha_symmetric() {
        let g = generators::path(3).unwrap();
        let speeds = vec![1.0, 2.0, 4.0];
        let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert!(p.is_stochastic(&g, 1e-12));
        // Entry is alpha / s_i, so it differs per direction while alpha is shared.
        let e01 = g.edge_between(0, 1).unwrap();
        assert!((p.entry(&g, 0, 1) - p.alpha(e01) / 1.0).abs() < 1e-12);
        assert!((p.entry(&g, 1, 0) - p.alpha(e01) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn apply_conserves_total_load() {
        let g = generators::hypercube(4).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut x: Vec<f64> = (0..g.node_count()).map(|i| (i % 7) as f64).collect();
        let total: f64 = x.iter().sum();
        for _ in 0..50 {
            x = p.apply(&g, &x);
        }
        assert!((x.iter().sum::<f64>() - total).abs() < 1e-6);
    }

    #[test]
    fn apply_converges_to_speed_proportional_fixed_point() {
        let g = generators::complete(4).unwrap();
        let speeds = vec![1.0, 1.0, 2.0, 4.0];
        let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut x = vec![8.0, 0.0, 0.0, 0.0];
        for _ in 0..500 {
            x = p.apply(&g, &x);
        }
        let total_speed: f64 = speeds.iter().sum();
        for i in 0..4 {
            let expected = 8.0 * speeds[i] / total_speed;
            assert!(
                (x[i] - expected).abs() < 1e-6,
                "node {i}: {x:?} vs expected {expected}"
            );
        }
    }

    #[test]
    fn entry_of_non_adjacent_nodes_is_zero() {
        let g = generators::path(4).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert_eq!(p.entry(&g, 0, 3), 0.0);
    }

    #[test]
    fn rejects_bad_speeds() {
        let g = generators::cycle(4).unwrap();
        assert!(DiffusionMatrix::new(&g, &[1.0; 3], AlphaScheme::MaxDegreePlusOne).is_err());
        assert!(
            DiffusionMatrix::new(&g, &[1.0, 0.0, 1.0, 1.0], AlphaScheme::MaxDegreePlusOne).is_err()
        );
        assert!(
            DiffusionMatrix::new(&g, &[1.0, -2.0, 1.0, 1.0], AlphaScheme::MaxDegreePlusOne)
                .is_err()
        );
        assert!(DiffusionMatrix::new(
            &g,
            &[1.0, f64::NAN, 1.0, 1.0],
            AlphaScheme::MaxDegreePlusOne
        )
        .is_err());
    }

    #[test]
    fn star_alpha_uses_max_degree() {
        let g = generators::star(5).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        // Centre has degree 4, leaves degree 1 => alpha = 1/5 for every edge.
        for e in 0..g.edge_count() {
            assert!((p.alpha(e) - 0.2).abs() < 1e-12);
        }
        assert!(p.is_stochastic(&g, 1e-12));
    }
}
