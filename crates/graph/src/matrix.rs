//! Speed-aware diffusion matrices.
//!
//! The first- and second-order diffusion schemes of the paper are driven by a
//! stochastic matrix `P` with
//!
//! ```text
//! P[i][j] = α[i][j] / s[i]          for j ∈ N(i)
//! P[i][i] = 1 − Σ_{j ∈ N(i)} α[i][j] / s[i]
//! ```
//!
//! where the `α[i][j] = α[j][i]` are symmetric edge weights satisfying
//! `Σ_{j ∈ N(i)} α[i][j] < s[i]` for every node `i`. [`DiffusionMatrix`]
//! stores the per-edge `α` values together with node speeds and offers the
//! row-vector product `x ↦ x·P` that advances the continuous process.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, GraphDelta, NodeId};

/// Strategy for choosing the symmetric edge weights `α[i][j]`.
///
/// Both schemes reduce to the standard literature choices for unit speeds and
/// generalise to heterogeneous speeds by scaling with `min(s_i, s_j)`, which
/// preserves symmetry and keeps every row sum strictly below `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AlphaScheme {
    /// `α[i][j] = min(s_i, s_j) / (max(d_i, d_j) + 1)` — the common
    /// `1/(max(d_i, d_j) + 1)` choice for unit speeds.
    #[default]
    MaxDegreePlusOne,
    /// `α[i][j] = min(s_i, s_j) / (2 · max(d_i, d_j))` — the common
    /// `1/(2 · max(d_i, d_j))` choice for unit speeds. Guarantees `P` has
    /// diagonal entries at least 1/2, which keeps all eigenvalues
    /// non-negative (useful on bipartite graphs).
    Lazy,
}

impl AlphaScheme {
    /// Computes `α` for the edge `{i, j}` given degrees and speeds.
    pub fn alpha(self, deg_i: usize, deg_j: usize, speed_i: f64, speed_j: f64) -> f64 {
        let dmax = deg_i.max(deg_j) as f64;
        let smin = speed_i.min(speed_j);
        match self {
            AlphaScheme::MaxDegreePlusOne => smin / (dmax + 1.0),
            AlphaScheme::Lazy => smin / (2.0 * dmax),
        }
    }
}

/// A speed-aware diffusion matrix over a fixed graph.
///
/// The matrix does not own the graph; methods that need the topology take a
/// `&Graph` argument and debug-assert that its node and edge counts match the
/// ones captured at construction time.
///
/// # Examples
///
/// ```
/// use lb_graph::{generators, AlphaScheme, DiffusionMatrix};
///
/// let g = generators::cycle(4)?;
/// let speeds = vec![1.0; 4];
/// let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// let x = vec![4.0, 0.0, 0.0, 0.0];
/// let next = p.apply(&g, &x);
/// // Load is conserved by one diffusion step.
/// assert!((next.iter().sum::<f64>() - 4.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionMatrix {
    n: usize,
    m: usize,
    /// Per-edge symmetric weight `α_e`, indexed by [`EdgeId`].
    alphas: Vec<f64>,
    /// Node speeds (strictly positive).
    speeds: Vec<f64>,
    /// Diagonal entries `P[i][i]`.
    diagonal: Vec<f64>,
    scheme: AlphaScheme,
}

impl DiffusionMatrix {
    /// Builds the diffusion matrix for `graph` with the given `speeds` and
    /// `scheme`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `speeds.len()` does not
    /// match the node count or any speed is not strictly positive and finite.
    pub fn new(graph: &Graph, speeds: &[f64], scheme: AlphaScheme) -> Result<Self, GraphError> {
        if speeds.len() != graph.node_count() {
            return Err(GraphError::invalid_parameter(format!(
                "speeds length {} does not match node count {}",
                speeds.len(),
                graph.node_count()
            )));
        }
        if let Some((i, &s)) = speeds
            .iter()
            .enumerate()
            .find(|(_, &s)| !(s.is_finite() && s > 0.0))
        {
            return Err(GraphError::invalid_parameter(format!(
                "speed of node {i} must be positive and finite, got {s}"
            )));
        }
        let mut alphas = vec![0.0; graph.edge_count()];
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            alphas[e] = scheme.alpha(graph.degree(u), graph.degree(v), speeds[u], speeds[v]);
        }
        let mut diagonal = vec![0.0; graph.node_count()];
        for i in graph.nodes() {
            let outgoing: f64 = graph
                .neighbors_with_edges(i)
                .map(|(_, e)| alphas[e] / speeds[i])
                .sum();
            diagonal[i] = 1.0 - outgoing;
        }
        Ok(DiffusionMatrix {
            n: graph.node_count(),
            m: graph.edge_count(),
            alphas,
            speeds: speeds.to_vec(),
            diagonal,
            scheme,
        })
    }

    /// Convenience constructor for unit speeds.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DiffusionMatrix::new`]; with unit speeds this
    /// only happens for internal inconsistencies.
    pub fn uniform(graph: &Graph, scheme: AlphaScheme) -> Result<Self, GraphError> {
        Self::new(graph, &vec![1.0; graph.node_count()], scheme)
    }

    /// Incrementally rebuilds the matrix for a patched topology.
    ///
    /// `new_graph` must be `old_graph` with `delta` applied (see
    /// [`Graph::apply_delta`]); speeds and scheme carry over from `self`.
    /// Because `α_e` is a pure function of the endpoint degrees and speeds,
    /// every edge not incident to a degree-changed node keeps its old `α`
    /// bit-for-bit, and only diagonals of degree-changed nodes and their
    /// neighbours are re-summed. The result is therefore **bit-identical** to
    /// `DiffusionMatrix::new(new_graph, self.speeds(), self.scheme())` while
    /// doing `O(m)` copies plus `O(Δ · d_max)` recomputation instead of a
    /// full `O(m + n · d_avg)` re-derivation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the graphs do not match
    /// `self` or the delta does not describe the old-to-new edge difference.
    pub fn patched(
        &self,
        old_graph: &Graph,
        new_graph: &Graph,
        delta: &GraphDelta,
    ) -> Result<Self, GraphError> {
        if old_graph.node_count() != self.n || old_graph.edge_count() != self.m {
            return Err(GraphError::invalid_parameter(
                "old graph does not match the matrix dimensions",
            ));
        }
        if new_graph.node_count() != self.n {
            return Err(GraphError::invalid_parameter(format!(
                "patched graph has {} nodes, matrix was built for {}",
                new_graph.node_count(),
                self.n
            )));
        }
        let expected_m = (self.m + delta.added.len())
            .checked_sub(delta.removed.len())
            .filter(|&m| m == new_graph.edge_count())
            .ok_or_else(|| {
                GraphError::invalid_parameter(format!(
                    "delta (+{} / -{}) does not connect edge counts {} -> {}",
                    delta.added.len(),
                    delta.removed.len(),
                    self.m,
                    new_graph.edge_count()
                ))
            })?;

        // Locate the delta's breakpoints: positions of removed edges in the
        // old list and of added edges in the new list (both strictly
        // increasing, since delta lists are sorted and duplicate-free).
        let old_edges = old_graph.edges();
        let new_edges = new_graph.edges();
        let position = |edges: &[(usize, usize)], edge: (usize, usize)| {
            edges.binary_search(&edge).map_err(|_| {
                GraphError::invalid_parameter(format!(
                    "delta does not describe the old-to-new difference at edge ({}, {})",
                    edge.0, edge.1
                ))
            })
        };
        let mut removed_at = Vec::with_capacity(delta.removed.len());
        for &edge in &delta.removed {
            removed_at.push(position(old_edges, edge)?);
        }
        let mut added_at = Vec::with_capacity(delta.added.len());
        for &edge in &delta.added {
            added_at.push(position(new_edges, edge)?);
        }

        // Between breakpoints the old and new edge lists must agree run for
        // run; kept runs bulk-copy their alphas (the recompute fix-up below
        // overwrites the touched-incident ones), so the per-edge work is a
        // slice compare and a memcpy instead of a branchy merge walk.
        let mut alphas = vec![0.0; expected_m];
        let (mut j, mut k, mut r, mut a) = (0usize, 0usize, 0usize, 0usize);
        while j < old_edges.len() || k < new_edges.len() {
            if removed_at.get(r) == Some(&j) {
                j += 1;
                r += 1;
                continue;
            }
            if added_at.get(a) == Some(&k) {
                let (u, v) = new_edges[k];
                alphas[k] = self.scheme.alpha(
                    new_graph.degree(u),
                    new_graph.degree(v),
                    self.speeds[u],
                    self.speeds[v],
                );
                k += 1;
                a += 1;
                continue;
            }
            let next_j = removed_at.get(r).copied().unwrap_or(old_edges.len());
            let next_k = added_at.get(a).copied().unwrap_or(new_edges.len());
            let len = (next_j - j).min(next_k - k);
            if len == 0 || old_edges[j..j + len] != new_edges[k..k + len] {
                let (u, v) = if k < new_edges.len() {
                    new_edges[k]
                } else {
                    old_edges[j]
                };
                return Err(GraphError::invalid_parameter(format!(
                    "delta does not describe the old-to-new difference at edge ({u}, {v})"
                )));
            }
            alphas[k..k + len].copy_from_slice(&self.alphas[j..j + len]);
            j += len;
            k += len;
        }

        // Fix-up: every new-graph edge incident to a touched node gets its
        // alpha recomputed with the new degrees (kept edges whose endpoint
        // degree changed, plus the added edges again — same value). O(Δ·d).
        for t in delta.touched_nodes() {
            for (_, e) in new_graph.neighbors_with_edges(t) {
                let (u, v) = new_edges[e];
                alphas[e] = self.scheme.alpha(
                    new_graph.degree(u),
                    new_graph.degree(v),
                    self.speeds[u],
                    self.speeds[v],
                );
            }
        }

        // Diagonals: copy wholesale, then re-sum only the closed
        // neighbourhood of the touched nodes. Re-summing a node whose
        // incident alphas are all unchanged reproduces the original value
        // bit for bit (same CSR order, same inputs), so a superset of the
        // strictly-affected nodes is safe.
        let mut diagonal = self.diagonal.clone();
        let mut affected = delta.touched_nodes();
        for &(u, v) in delta.removed.iter().chain(delta.added.iter()) {
            affected.extend_from_slice(new_graph.neighbors(u));
            affected.extend_from_slice(new_graph.neighbors(v));
        }
        affected.sort_unstable();
        affected.dedup();
        for &i in &affected {
            let outgoing: f64 = new_graph
                .neighbors_with_edges(i)
                .map(|(_, e)| alphas[e] / self.speeds[i])
                .sum();
            diagonal[i] = 1.0 - outgoing;
        }

        Ok(DiffusionMatrix {
            n: self.n,
            m: expected_m,
            alphas,
            speeds: self.speeds.clone(),
            diagonal,
            scheme: self.scheme,
        })
    }

    /// Number of nodes the matrix was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges the matrix was built for.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The `α` scheme used at construction.
    pub fn scheme(&self) -> AlphaScheme {
        self.scheme
    }

    /// The symmetric weight `α_e` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn alpha(&self, e: EdgeId) -> f64 {
        self.alphas[e]
    }

    /// All per-edge `α` values, indexed by [`EdgeId`].
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Node speeds captured at construction.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The diagonal entry `P[i][i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn diagonal(&self, i: NodeId) -> f64 {
        self.diagonal[i]
    }

    /// The off-diagonal entry `P[i][j] = α[i][j] / s_i` for an adjacent pair,
    /// or 0.0 for non-adjacent distinct nodes, or the diagonal for `i == j`.
    pub fn entry(&self, graph: &Graph, i: NodeId, j: NodeId) -> f64 {
        self.debug_check(graph);
        if i == j {
            return self.diagonal[i];
        }
        match graph.edge_between(i, j) {
            Some(e) => self.alphas[e] / self.speeds[i],
            None => 0.0,
        }
    }

    /// Computes the row-vector product `x · P`, i.e. one synchronous step of
    /// the continuous first-order diffusion on load vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the node count.
    pub fn apply(&self, graph: &Graph, x: &[f64]) -> Vec<f64> {
        self.debug_check(graph);
        assert_eq!(x.len(), self.n, "load vector length must equal node count");
        let mut out = vec![0.0; self.n];
        for i in 0..self.n {
            out[i] += x[i] * self.diagonal[i];
        }
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let a = self.alphas[e];
            // Mass flowing u -> v and v -> u.
            out[v] += x[u] * a / self.speeds[u];
            out[u] += x[v] * a / self.speeds[v];
        }
        out
    }

    /// Verifies that `P` is row-stochastic with non-negative entries, within
    /// floating-point tolerance. Mostly used by tests and debug assertions.
    pub fn is_stochastic(&self, graph: &Graph, tol: f64) -> bool {
        self.debug_check(graph);
        for i in 0..self.n {
            if self.diagonal[i] < -tol {
                return false;
            }
            let row_sum: f64 = self.diagonal[i]
                + graph
                    .neighbors_with_edges(i)
                    .map(|(_, e)| self.alphas[e] / self.speeds[i])
                    .sum::<f64>();
            if (row_sum - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    fn debug_check(&self, graph: &Graph) {
        debug_assert_eq!(
            graph.node_count(),
            self.n,
            "graph/matrix node count mismatch"
        );
        debug_assert_eq!(
            graph.edge_count(),
            self.m,
            "graph/matrix edge count mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_cycle_matrix_is_stochastic() {
        let g = generators::cycle(6).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert!(p.is_stochastic(&g, 1e-12));
        // Every edge weight is 1/(2+1).
        for e in 0..g.edge_count() {
            assert!((p.alpha(e) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!((p.diagonal(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_scheme_has_large_diagonal() {
        let g = generators::cycle(6).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::Lazy).unwrap();
        for i in g.nodes() {
            assert!(p.diagonal(i) >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn speeds_scale_rows_but_keep_alpha_symmetric() {
        let g = generators::path(3).unwrap();
        let speeds = vec![1.0, 2.0, 4.0];
        let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert!(p.is_stochastic(&g, 1e-12));
        // Entry is alpha / s_i, so it differs per direction while alpha is shared.
        let e01 = g.edge_between(0, 1).unwrap();
        assert!((p.entry(&g, 0, 1) - p.alpha(e01) / 1.0).abs() < 1e-12);
        assert!((p.entry(&g, 1, 0) - p.alpha(e01) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn apply_conserves_total_load() {
        let g = generators::hypercube(4).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut x: Vec<f64> = (0..g.node_count()).map(|i| (i % 7) as f64).collect();
        let total: f64 = x.iter().sum();
        for _ in 0..50 {
            x = p.apply(&g, &x);
        }
        assert!((x.iter().sum::<f64>() - total).abs() < 1e-6);
    }

    #[test]
    fn apply_converges_to_speed_proportional_fixed_point() {
        let g = generators::complete(4).unwrap();
        let speeds = vec![1.0, 1.0, 2.0, 4.0];
        let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut x = vec![8.0, 0.0, 0.0, 0.0];
        for _ in 0..500 {
            x = p.apply(&g, &x);
        }
        let total_speed: f64 = speeds.iter().sum();
        for i in 0..4 {
            let expected = 8.0 * speeds[i] / total_speed;
            assert!(
                (x[i] - expected).abs() < 1e-6,
                "node {i}: {x:?} vs expected {expected}"
            );
        }
    }

    #[test]
    fn entry_of_non_adjacent_nodes_is_zero() {
        let g = generators::path(4).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert_eq!(p.entry(&g, 0, 3), 0.0);
    }

    #[test]
    fn rejects_bad_speeds() {
        let g = generators::cycle(4).unwrap();
        assert!(DiffusionMatrix::new(&g, &[1.0; 3], AlphaScheme::MaxDegreePlusOne).is_err());
        assert!(
            DiffusionMatrix::new(&g, &[1.0, 0.0, 1.0, 1.0], AlphaScheme::MaxDegreePlusOne).is_err()
        );
        assert!(
            DiffusionMatrix::new(&g, &[1.0, -2.0, 1.0, 1.0], AlphaScheme::MaxDegreePlusOne)
                .is_err()
        );
        assert!(DiffusionMatrix::new(
            &g,
            &[1.0, f64::NAN, 1.0, 1.0],
            AlphaScheme::MaxDegreePlusOne
        )
        .is_err());
    }

    #[test]
    fn patched_matrix_is_bit_identical_to_fresh_build() {
        let old = generators::hypercube(4).unwrap();
        // Heterogeneous speeds so alpha actually depends on both endpoints.
        let speeds: Vec<f64> = (0..old.node_count())
            .map(|i| 1.0 + (i % 5) as f64 * 0.5)
            .collect();
        let p = DiffusionMatrix::new(&old, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();

        // Rewire: drop two hypercube edges, add two chords.
        let delta = GraphDelta::new(old.node_count(), [(0, 5), (3, 12)], [(0, 1), (2, 6)]).unwrap();
        assert_eq!(delta.removed, vec![(0, 1), (2, 6)]);
        assert_eq!(delta.added, vec![(0, 5), (3, 12)]);
        let new = old.apply_delta(&delta).unwrap();
        let patched = p.patched(&old, &new, &delta).unwrap();
        let fresh = DiffusionMatrix::new(&new, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();

        assert_eq!(patched.edge_count(), fresh.edge_count());
        for e in 0..fresh.edge_count() {
            assert_eq!(
                patched.alpha(e).to_bits(),
                fresh.alpha(e).to_bits(),
                "alpha mismatch at edge {e}"
            );
        }
        for i in new.nodes() {
            assert_eq!(
                patched.diagonal(i).to_bits(),
                fresh.diagonal(i).to_bits(),
                "diagonal mismatch at node {i}"
            );
        }
        assert!(patched.is_stochastic(&new, 1e-12));
    }

    #[test]
    fn patched_with_empty_delta_is_bit_identical_copy() {
        let g = generators::cycle(8).unwrap();
        let speeds: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.25).collect();
        let p = DiffusionMatrix::new(&g, &speeds, AlphaScheme::Lazy).unwrap();
        let patched = p.patched(&g, &g, &GraphDelta::default()).unwrap();
        for e in 0..g.edge_count() {
            assert_eq!(patched.alpha(e).to_bits(), p.alpha(e).to_bits());
        }
        for i in g.nodes() {
            assert_eq!(patched.diagonal(i).to_bits(), p.diagonal(i).to_bits());
        }
    }

    #[test]
    fn patched_rejects_inconsistent_delta() {
        let g = generators::cycle(6).unwrap();
        let other = generators::path(6).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        // Empty delta cannot connect cycle(6) to path(6) (edge counts differ).
        assert!(p.patched(&g, &other, &GraphDelta::default()).is_err());
        // Node-count mismatch is rejected.
        let bigger = generators::cycle(8).unwrap();
        assert!(p.patched(&g, &bigger, &GraphDelta::default()).is_err());
    }

    #[test]
    fn star_alpha_uses_max_degree() {
        let g = generators::star(5).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        // Centre has degree 4, leaves degree 1 => alpha = 1/5 for every edge.
        for e in 0..g.edge_count() {
            assert!((p.alpha(e) - 0.2).abs() < 1e-12);
        }
        assert!(p.is_stochastic(&g, 1e-12));
    }
}
