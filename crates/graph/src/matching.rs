//! Matchings for dimension-exchange style load balancing.
//!
//! The matching-based models of the paper restrict the per-round load
//! exchange to a matching of the graph. Two variants are supported:
//!
//! * **Periodic matchings** — a fixed set of matchings that together cover
//!   every edge (obtained from a greedy edge colouring) and are used
//!   round-robin, `P(t) = P(t mod d̃)`.
//! * **Random matchings** — an independently sampled random maximal matching
//!   per round.

use crate::graph::{EdgeId, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A matching: a set of edges no two of which share an endpoint.
///
/// Stored as the list of edge ids; the node pairing can be recovered through
/// [`Graph::edge_endpoints`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Matching {
    edges: Vec<EdgeId>,
}

impl Matching {
    /// Creates a matching from a list of edge ids.
    ///
    /// The caller is responsible for the edges actually being disjoint; use
    /// [`Matching::is_valid`] to verify against a graph.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Matching { edges }
    }

    /// The edge ids in this matching.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges in the matching.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the matching contains no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Checks that no two edges of the matching share an endpoint in `graph`.
    pub fn is_valid(&self, graph: &Graph) -> bool {
        let mut used = vec![false; graph.node_count()];
        for &e in &self.edges {
            if e >= graph.edge_count() {
                return false;
            }
            let (u, v) = graph.edge_endpoints(e);
            if used[u] || used[v] {
                return false;
            }
            used[u] = true;
            used[v] = true;
        }
        true
    }

    /// Returns the partner of `node` in this matching, or `None` if the node
    /// is unmatched.
    pub fn partner_of(&self, graph: &Graph, node: NodeId) -> Option<NodeId> {
        for &e in &self.edges {
            let (u, v) = graph.edge_endpoints(e);
            if u == node {
                return Some(v);
            }
            if v == node {
                return Some(u);
            }
        }
        None
    }
}

impl FromIterator<EdgeId> for Matching {
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        Matching::new(iter.into_iter().collect())
    }
}

/// A fixed family of matchings covering every edge, used periodically.
///
/// Constructed by [`PeriodicMatchings::greedy_edge_coloring`], which colours
/// edges greedily and therefore uses at most `2·d − 1` colours (the paper
/// only needs "roughly maximum degree many" matchings).
///
/// # Examples
///
/// ```
/// use lb_graph::{generators, PeriodicMatchings};
///
/// let g = generators::hypercube(3)?;
/// let pm = PeriodicMatchings::greedy_edge_coloring(&g);
/// assert!(pm.period() >= 3);
/// // Every edge appears in exactly one matching.
/// let covered: usize = (0..pm.period()).map(|i| pm.matching(i).len()).sum();
/// assert_eq!(covered, g.edge_count());
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicMatchings {
    matchings: Vec<Matching>,
}

impl PeriodicMatchings {
    /// Builds periodic matchings from an explicit list.
    ///
    /// # Panics
    ///
    /// Panics if `matchings` is empty.
    pub fn new(matchings: Vec<Matching>) -> Self {
        assert!(
            !matchings.is_empty(),
            "periodic matchings require at least one matching"
        );
        PeriodicMatchings { matchings }
    }

    /// Greedily edge-colours `graph` and returns the colour classes as
    /// matchings. Every edge is covered exactly once; at most `2·d − 1`
    /// colours are used. For the empty graph a single empty matching is
    /// returned so that the period is never zero.
    pub fn greedy_edge_coloring(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut colour_of_edge: Vec<Option<usize>> = vec![None; graph.edge_count()];
        // colours_used[u] holds the set of colours already incident to u,
        // as a bitset in a Vec<bool> grown on demand.
        let mut colours_used: Vec<Vec<bool>> = vec![Vec::new(); n];
        let mut num_colours = 0usize;
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            // Find the smallest colour free at both endpoints.
            let mut colour = 0usize;
            loop {
                let used_u = colours_used[u].get(colour).copied().unwrap_or(false);
                let used_v = colours_used[v].get(colour).copied().unwrap_or(false);
                if !used_u && !used_v {
                    break;
                }
                colour += 1;
            }
            colour_of_edge[e] = Some(colour);
            for node in [u, v] {
                if colours_used[node].len() <= colour {
                    colours_used[node].resize(colour + 1, false);
                }
                colours_used[node][colour] = true;
            }
            num_colours = num_colours.max(colour + 1);
        }
        let mut classes: Vec<Vec<EdgeId>> = vec![Vec::new(); num_colours.max(1)];
        for (e, colour) in colour_of_edge.into_iter().enumerate() {
            // lint: allow(R03, the colouring loop above covers every edge)
            let colour = colour.expect("every edge is coloured");
            classes[colour].push(e);
        }
        PeriodicMatchings {
            matchings: classes.into_iter().map(Matching::new).collect(),
        }
    }

    /// The number of matchings `d̃` in one period.
    pub fn period(&self) -> usize {
        self.matchings.len()
    }

    /// The matching used in round `t`, i.e. matching `t mod d̃`.
    pub fn for_round(&self, t: usize) -> &Matching {
        &self.matchings[t % self.matchings.len()]
    }

    /// The `i`-th matching of the period.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.period()`.
    pub fn matching(&self, i: usize) -> &Matching {
        &self.matchings[i]
    }

    /// Iterator over the matchings of one period.
    pub fn iter(&self) -> impl Iterator<Item = &Matching> {
        self.matchings.iter()
    }

    /// Checks that all matchings are valid and together cover each edge of
    /// `graph` exactly once.
    pub fn is_proper_cover(&self, graph: &Graph) -> bool {
        let mut seen = vec![false; graph.edge_count()];
        for matching in &self.matchings {
            if !matching.is_valid(graph) {
                return false;
            }
            for &e in matching.edges() {
                if seen[e] {
                    return false;
                }
                seen[e] = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// Samples a random maximal matching of `graph`: edges are visited in a
/// uniformly random order and added whenever both endpoints are still free.
///
/// This is the per-round matching distribution of the random-matching model
/// (Ghosh–Muthukrishnan style); each edge is included with probability
/// `Ω(1/d)`.
pub fn random_maximal_matching(graph: &Graph, rng: &mut impl Rng) -> Matching {
    let mut order: Vec<EdgeId> = (0..graph.edge_count()).collect();
    order.shuffle(rng);
    let mut used = vec![false; graph.node_count()];
    let mut picked = Vec::new();
    for e in order {
        let (u, v) = graph.edge_endpoints(e);
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            picked.push(e);
        }
    }
    picked.sort_unstable();
    Matching::new(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_coloring_covers_hypercube() {
        let g = generators::hypercube(4).unwrap();
        let pm = PeriodicMatchings::greedy_edge_coloring(&g);
        assert!(pm.is_proper_cover(&g));
        assert!(pm.period() >= 4, "need at least d matchings");
        assert!(pm.period() < 2 * 4, "greedy colouring uses < 2d colours");
    }

    #[test]
    fn greedy_coloring_covers_irregular_graph() {
        let g = generators::star(9).unwrap();
        let pm = PeriodicMatchings::greedy_edge_coloring(&g);
        assert!(pm.is_proper_cover(&g));
        // A star needs exactly d = 8 matchings of one edge each.
        assert_eq!(pm.period(), 8);
        for m in pm.iter() {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn for_round_wraps_around() {
        let g = generators::cycle(6).unwrap();
        let pm = PeriodicMatchings::greedy_edge_coloring(&g);
        let period = pm.period();
        assert_eq!(pm.for_round(0), pm.for_round(period));
        assert_eq!(pm.for_round(3), pm.for_round(3 + 5 * period));
    }

    #[test]
    fn matching_partner_lookup() {
        let g = generators::path(4).unwrap();
        let e01 = g.edge_between(0, 1).unwrap();
        let e23 = g.edge_between(2, 3).unwrap();
        let m = Matching::new(vec![e01, e23]);
        assert!(m.is_valid(&g));
        assert_eq!(m.partner_of(&g, 0), Some(1));
        assert_eq!(m.partner_of(&g, 3), Some(2));
        let e12 = g.edge_between(1, 2).unwrap();
        let bad = Matching::new(vec![e01, e12]);
        assert!(!bad.is_valid(&g));
    }

    #[test]
    fn matching_from_iterator_and_emptiness() {
        let m: Matching = [].into_iter().collect();
        assert!(m.is_empty());
        let m: Matching = [0usize, 2].into_iter().collect();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn invalid_edge_id_fails_validation() {
        let g = generators::path(3).unwrap();
        let m = Matching::new(vec![99]);
        assert!(!m.is_valid(&g));
    }

    #[test]
    fn random_maximal_matching_is_valid_and_maximal() {
        let g = generators::torus(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let m = random_maximal_matching(&g, &mut rng);
            assert!(m.is_valid(&g));
            // Maximality: every edge has at least one matched endpoint.
            let mut matched = vec![false; g.node_count()];
            for &e in m.edges() {
                let (u, v) = g.edge_endpoints(e);
                matched[u] = true;
                matched[v] = true;
            }
            for &(u, v) in g.edges() {
                assert!(matched[u] || matched[v], "edge ({u},{v}) extendable");
            }
        }
    }

    #[test]
    fn random_matching_is_deterministic_per_seed() {
        let g = generators::hypercube(3).unwrap();
        let m1 = random_maximal_matching(&g, &mut StdRng::seed_from_u64(7));
        let m2 = random_maximal_matching(&g, &mut StdRng::seed_from_u64(7));
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "at least one matching")]
    fn periodic_matchings_reject_empty_list() {
        let _ = PeriodicMatchings::new(vec![]);
    }
}
