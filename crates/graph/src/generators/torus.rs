//! Torus and grid families.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Builds the 2-dimensional torus (wrap-around grid) with `rows × cols`
/// nodes.
///
/// Node `(r, c)` is numbered `r * cols + c` and is adjacent to its four
/// wrap-around neighbours. For side length 2 the wrap-around edge coincides
/// with the direct edge, so degrees drop accordingly.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side is smaller than 2.
///
/// # Examples
///
/// ```
/// let g = lb_graph::generators::torus(4, 4)?;
/// assert_eq!(g.node_count(), 16);
/// assert!(g.is_regular());
/// assert_eq!(g.max_degree(), 4);
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    torus_multidim(&[rows, cols]).map(|g| g.with_name(format!("torus({rows}x{cols})")))
}

/// Builds an `r`-dimensional torus with the given side lengths.
///
/// The node with coordinates `(c_0, …, c_{r-1})` is adjacent to the nodes
/// obtained by incrementing or decrementing one coordinate modulo its side
/// length. This is the "r-dim tori, r = O(1)" family from the paper's
/// comparison tables.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if no side lengths are given or
/// any side length is smaller than 2.
pub fn torus_multidim(sides: &[usize]) -> Result<Graph, GraphError> {
    if sides.is_empty() {
        return Err(GraphError::invalid_parameter(
            "torus requires at least one dimension",
        ));
    }
    if let Some(bad) = sides.iter().find(|&&s| s < 2) {
        return Err(GraphError::invalid_parameter(format!(
            "torus side lengths must be at least 2, got {bad}"
        )));
    }
    let n: usize = sides.iter().product();
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("torus{sides:?}"));
    let mut coords = vec![0usize; sides.len()];
    for u in 0..n {
        // Decode coordinates of u (row-major).
        let mut rest = u;
        for (k, &side) in sides.iter().enumerate().rev() {
            coords[k] = rest % side;
            rest /= side;
        }
        for (k, &side) in sides.iter().enumerate() {
            let up = (coords[k] + 1) % side;
            let v = recompose(&coords, k, up, sides);
            if v != u {
                builder.add_edge(u, v).expect("torus edges are valid");
            }
        }
    }
    Ok(builder.build())
}

/// Builds the non-wrapping 2-dimensional grid with `rows × cols` nodes.
///
/// Interior nodes have degree 4, border nodes 3, corners 2. The grid has the
/// same `Θ(n^{1/2})` diameter as the torus but is not regular, making it a
/// useful "arbitrary graph" test case.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side is zero.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::invalid_parameter("grid sides must be positive"));
    }
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("grid({rows}x{cols})"));
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                builder.add_edge(u, u + 1).expect("grid edges are valid");
            }
            if r + 1 < rows {
                builder.add_edge(u, u + cols).expect("grid edges are valid");
            }
        }
    }
    Ok(builder.build())
}

fn recompose(coords: &[usize], replaced: usize, value: usize, sides: &[usize]) -> usize {
    let mut idx = 0usize;
    for (k, &side) in sides.iter().enumerate() {
        let c = if k == replaced { value } else { coords[k] };
        idx = idx * side + c;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_4x4_is_4_regular() {
        let g = torus(4, 4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.edge_count(), 32);
    }

    #[test]
    fn torus_side_two_merges_wraparound() {
        // On a 2x4 torus the vertical wrap edge coincides with the direct
        // edge, so vertical degree contribution is 1 instead of 2.
        let g = torus(2, 4).unwrap();
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn three_dimensional_torus() {
        let g = torus_multidim(&[3, 3, 3]).unwrap();
        assert_eq!(g.node_count(), 27);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 6);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_cycle_equivalence() {
        // A 1-dimensional torus of length k is the k-cycle.
        let g = torus_multidim(&[6]).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 4);
        assert!(!g.is_regular());
    }

    #[test]
    fn grid_single_row_is_path() {
        let g = grid(1, 5).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(torus(1, 4).is_err());
        assert!(torus_multidim(&[]).is_err());
        assert!(torus_multidim(&[3, 1]).is_err());
        assert!(grid(0, 3).is_err());
    }

    #[test]
    fn torus_diameter_matches_manhattan_wraparound() {
        let g = torus(4, 6).unwrap();
        // diameter = floor(4/2) + floor(6/2) = 2 + 3
        assert_eq!(g.diameter(), Some(5));
    }
}
