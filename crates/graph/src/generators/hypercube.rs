//! The binary hypercube family.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Builds the `dim`-dimensional binary hypercube on `2^dim` nodes.
///
/// Node `u` is adjacent to `u ^ (1 << k)` for every bit position `k < dim`,
/// so the graph is `dim`-regular with diameter `dim`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim == 0` or if `2^dim`
/// would overflow `usize` (i.e. `dim >= 48` is rejected as unreasonable for
/// simulation).
///
/// # Examples
///
/// ```
/// let g = lb_graph::generators::hypercube(3)?;
/// assert_eq!(g.node_count(), 8);
/// assert_eq!(g.max_degree(), 3);
/// assert_eq!(g.diameter(), Some(3));
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
pub fn hypercube(dim: u32) -> Result<Graph, GraphError> {
    if dim == 0 {
        return Err(GraphError::invalid_parameter(
            "hypercube dimension must be at least 1",
        ));
    }
    if dim >= 48 {
        return Err(GraphError::invalid_parameter(
            "hypercube dimension must be below 48",
        ));
    }
    let n = 1usize << dim;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("hypercube({dim})"));
    for u in 0..n {
        for k in 0..dim {
            let v = u ^ (1usize << k);
            if u < v {
                builder
                    .add_edge(u, v)
                    .expect("hypercube edges are always valid");
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_one_is_a_single_edge() {
        let g = hypercube(1).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn regular_with_degree_dim() {
        for dim in 1..=6u32 {
            let g = hypercube(dim).unwrap();
            assert_eq!(g.node_count(), 1 << dim);
            assert_eq!(g.edge_count(), (dim as usize) << (dim - 1));
            assert!(g.is_regular());
            assert_eq!(g.max_degree(), dim as usize);
        }
    }

    #[test]
    fn diameter_equals_dimension() {
        for dim in 1..=5u32 {
            assert_eq!(hypercube(dim).unwrap().diameter(), Some(dim as usize));
        }
    }

    #[test]
    fn hypercube_is_bipartite() {
        assert!(hypercube(4).unwrap().is_bipartite());
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(hypercube(0).is_err());
        assert!(hypercube(48).is_err());
    }

    #[test]
    fn adjacency_differs_in_exactly_one_bit() {
        let g = hypercube(4).unwrap();
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert_eq!((u ^ v).count_ones(), 1);
            }
        }
    }
}
