//! Low-expansion ("bottleneck") graph families.
//!
//! These families have a small spectral gap, so discretization schemes whose
//! discrepancy bound depends on `1/(1 - λ)` or the expansion degrade badly on
//! them, while the paper's flow-imitation bounds do not. They are used in the
//! ablation experiments that highlight the gap between the bounds.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Builds a barbell graph: two cliques of `clique_size` nodes joined by a
/// path of `bridge_len` extra nodes (a bridge of length 0 joins the cliques
/// by a single edge).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `clique_size < 2`.
pub fn barbell(clique_size: usize, bridge_len: usize) -> Result<Graph, GraphError> {
    if clique_size < 2 {
        return Err(GraphError::invalid_parameter(
            "barbell clique size must be at least 2",
        ));
    }
    let n = 2 * clique_size + bridge_len;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("barbell(k={clique_size}, bridge={bridge_len})"));
    // Left clique: nodes 0..clique_size.
    add_clique(&mut builder, 0, clique_size);
    // Right clique: the last clique_size nodes.
    add_clique(&mut builder, clique_size + bridge_len, clique_size);
    // Bridge path: clique_size-1 -> bridge nodes -> clique_size+bridge_len.
    let mut prev = clique_size - 1;
    for b in 0..bridge_len {
        let node = clique_size + b;
        builder.add_edge(prev, node).expect("bridge edges valid");
        prev = node;
    }
    builder
        .add_edge(prev, clique_size + bridge_len)
        .expect("bridge end edge valid");
    Ok(builder.build())
}

/// Builds a lollipop graph: a clique of `clique_size` nodes with a path of
/// `tail_len` nodes attached.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `clique_size < 2` or
/// `tail_len == 0`.
pub fn lollipop(clique_size: usize, tail_len: usize) -> Result<Graph, GraphError> {
    if clique_size < 2 {
        return Err(GraphError::invalid_parameter(
            "lollipop clique size must be at least 2",
        ));
    }
    if tail_len == 0 {
        return Err(GraphError::invalid_parameter(
            "lollipop tail length must be at least 1",
        ));
    }
    let n = clique_size + tail_len;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("lollipop(k={clique_size}, tail={tail_len})"));
    add_clique(&mut builder, 0, clique_size);
    let mut prev = clique_size - 1;
    for t in 0..tail_len {
        let node = clique_size + t;
        builder.add_edge(prev, node).expect("tail edges valid");
        prev = node;
    }
    Ok(builder.build())
}

/// Builds a ring of `cliques` cliques, each of `clique_size` nodes, where
/// consecutive cliques are joined by a single edge.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `cliques < 3` or
/// `clique_size < 2`.
pub fn ring_of_cliques(cliques: usize, clique_size: usize) -> Result<Graph, GraphError> {
    if cliques < 3 {
        return Err(GraphError::invalid_parameter(
            "ring of cliques requires at least 3 cliques",
        ));
    }
    if clique_size < 2 {
        return Err(GraphError::invalid_parameter(
            "ring of cliques requires clique size at least 2",
        ));
    }
    let n = cliques * clique_size;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("ring_of_cliques({cliques}x{clique_size})"));
    for c in 0..cliques {
        add_clique(&mut builder, c * clique_size, clique_size);
        // Connect the "last" node of this clique to the "first" node of the
        // next clique around the ring.
        let from = c * clique_size + (clique_size - 1);
        let to = ((c + 1) % cliques) * clique_size;
        builder.add_edge(from, to).expect("ring edges valid");
    }
    Ok(builder.build())
}

fn add_clique(builder: &mut GraphBuilder, start: usize, size: usize) {
    for u in start..start + size {
        for v in u + 1..start + size {
            builder.add_edge(u, v).expect("clique edges valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barbell_counts() {
        let g = barbell(5, 3).unwrap();
        assert_eq!(g.node_count(), 13);
        // Two cliques of C(5,2)=10 edges each, plus a bridge path of 4 edges.
        assert_eq!(g.edge_count(), 10 + 10 + 4);
        assert!(g.is_connected());
    }

    #[test]
    fn barbell_without_bridge_nodes() {
        let g = barbell(4, 0).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 6 + 6 + 1);
        assert!(g.is_connected());
    }

    #[test]
    fn lollipop_counts() {
        let g = lollipop(6, 4).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15 + 4);
        assert_eq!(g.min_degree(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_of_cliques_counts() {
        let g = ring_of_cliques(4, 5).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 10 + 4);
        assert!(g.is_connected());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(barbell(1, 2).is_err());
        assert!(lollipop(1, 2).is_err());
        assert!(lollipop(3, 0).is_err());
        assert!(ring_of_cliques(2, 3).is_err());
        assert!(ring_of_cliques(3, 1).is_err());
    }

    #[test]
    fn barbell_diameter_grows_with_bridge() {
        let short = barbell(4, 0).unwrap().diameter().unwrap();
        let long = barbell(4, 6).unwrap().diameter().unwrap();
        assert!(long > short);
    }
}
