//! Graph family generators used throughout the experiments.
//!
//! Each generator returns a named [`Graph`](crate::Graph) and validates its
//! parameters, returning [`GraphError::InvalidParameter`](crate::GraphError)
//! for impossible requests instead of panicking.
//!
//! The families cover the four graph classes of the paper's comparison
//! tables (arbitrary graphs, constant-degree expanders, hypercubes, r-dim
//! tori) plus low-expansion families used to stress the discrepancy bounds.

mod hypercube;
mod low_expansion;
mod random;
mod structured;
mod torus;

pub use hypercube::hypercube;
pub use low_expansion::{barbell, lollipop, ring_of_cliques};
pub use random::{erdos_renyi_connected, random_regular};
pub use structured::{binary_tree, complete, cycle, path, star};
pub use torus::{grid, torus, torus_multidim};

#[cfg(test)]
mod tests {
    //! Cross-family sanity checks shared by all generators.

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_generators_produce_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            hypercube(4).unwrap(),
            torus(4, 4).unwrap(),
            torus_multidim(&[3, 3, 3]).unwrap(),
            grid(3, 5).unwrap(),
            cycle(8).unwrap(),
            path(8).unwrap(),
            complete(6).unwrap(),
            star(7).unwrap(),
            binary_tree(4).unwrap(),
            random_regular(32, 4, &mut rng).unwrap(),
            erdos_renyi_connected(32, 0.2, &mut rng).unwrap(),
            barbell(8, 4).unwrap(),
            lollipop(8, 8).unwrap(),
            ring_of_cliques(4, 5).unwrap(),
        ];
        for g in graphs {
            assert!(g.is_connected(), "{g} must be connected");
            assert!(!g.name().is_empty(), "generators must name their graphs");
        }
    }
}
