//! Small structured families: cycles, paths, cliques, stars, trees.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Builds the cycle on `n >= 3` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::invalid_parameter("cycle requires n >= 3"));
    }
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("cycle({n})"));
    for u in 0..n {
        builder.add_edge(u, (u + 1) % n).expect("cycle edges valid");
    }
    Ok(builder.build())
}

/// Builds the path on `n >= 2` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::invalid_parameter("path requires n >= 2"));
    }
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("path({n})"));
    for u in 0..n - 1 {
        builder.add_edge(u, u + 1).expect("path edges valid");
    }
    Ok(builder.build())
}

/// Builds the complete graph on `n >= 2` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::invalid_parameter(
            "complete graph requires n >= 2",
        ));
    }
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("complete({n})"));
    for u in 0..n {
        for v in u + 1..n {
            builder.add_edge(u, v).expect("complete edges valid");
        }
    }
    Ok(builder.build())
}

/// Builds the star with one centre (node 0) and `n - 1` leaves.
///
/// The star is the canonical maximum-degree, non-regular test case.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::invalid_parameter("star requires n >= 2"));
    }
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("star({n})"));
    for leaf in 1..n {
        builder.add_edge(0, leaf).expect("star edges valid");
    }
    Ok(builder.build())
}

/// Builds the complete binary tree of the given `depth` (a tree of depth 1 is
/// a single edge plus root: 3 nodes).
///
/// The tree has `2^{depth+1} - 1` nodes; node 0 is the root and node `u` has
/// children `2u + 1` and `2u + 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `depth == 0` or `depth >= 40`.
pub fn binary_tree(depth: u32) -> Result<Graph, GraphError> {
    if depth == 0 {
        return Err(GraphError::invalid_parameter(
            "binary tree depth must be >= 1",
        ));
    }
    if depth >= 40 {
        return Err(GraphError::invalid_parameter(
            "binary tree depth must be < 40",
        ));
    }
    let n = (1usize << (depth + 1)) - 1;
    let mut builder = GraphBuilder::new(n);
    builder.set_name(format!("binary_tree({depth})"));
    for u in 0..n {
        for child in [2 * u + 1, 2 * u + 2] {
            if child < n {
                builder.add_edge(u, child).expect("tree edges valid");
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_properties() {
        let g = cycle(7).unwrap();
        assert_eq!(g.edge_count(), 7);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.diameter(), Some(3));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_properties() {
        let g = path(6).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), Some(5));
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_properties() {
        let g = complete(5).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
        assert!(g.is_regular());
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_properties() {
        let g = star(9).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.max_degree(), 8);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.diameter(), Some(2));
        assert!(star(1).is_err());
    }

    #[test]
    fn binary_tree_properties() {
        let g = binary_tree(3).unwrap();
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.max_degree(), 3);
        assert!(g.is_connected());
        assert!(g.is_bipartite());
        assert!(binary_tree(0).is_err());
        assert!(binary_tree(40).is_err());
    }

    #[test]
    fn even_cycles_are_bipartite_odd_are_not() {
        assert!(cycle(8).unwrap().is_bipartite());
        assert!(!cycle(9).unwrap().is_bipartite());
    }
}
