//! Random graph families: random regular graphs and connected Erdős–Rényi
//! graphs.
//!
//! Random `d`-regular graphs with `d >= 3` are expanders with high
//! probability, so [`random_regular`] doubles as the "constant-degree
//! expander" family of the paper's comparison tables. Callers that need a
//! certified spectral gap can verify it with
//! [`spectral::second_eigenvalue`](crate::spectral).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Maximum number of pairing attempts before the generator gives up. Each
/// attempt repairs self-loops and multi-edges with random edge swaps, so a
/// single attempt almost always succeeds; the retry loop only guards against
/// the rare disconnected sample.
const MAX_PAIRING_ATTEMPTS: usize = 200;

/// Generates a random simple `d`-regular graph on `n` nodes using the
/// configuration (pairing) model followed by random edge-swap repair of
/// self-loops and multi-edges, retrying until the result is simple and
/// connected.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `d >= n`, if `n * d` is odd,
/// if `d == 0`, or if no simple connected pairing was found after an internal
/// retry limit (practically impossible for `d >= 3`).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let g = lb_graph::generators::random_regular(64, 4, &mut rng)?;
/// assert!(g.is_regular());
/// assert_eq!(g.max_degree(), 4);
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Result<Graph, GraphError> {
    if d == 0 {
        return Err(GraphError::invalid_parameter("degree must be positive"));
    }
    if d >= n {
        return Err(GraphError::invalid_parameter(format!(
            "degree {d} must be smaller than node count {n}"
        )));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::invalid_parameter(format!(
            "n * d must be even, got n = {n}, d = {d}"
        )));
    }

    for _ in 0..MAX_PAIRING_ATTEMPTS {
        if let Some(graph) = try_pairing(n, d, rng) {
            if graph.is_connected() {
                return Ok(graph.with_name(format!("random_regular(n={n}, d={d})")));
            }
        }
    }
    Err(GraphError::invalid_parameter(format!(
        "failed to sample a simple connected {d}-regular graph on {n} nodes"
    )))
}

fn try_pairing(n: usize, d: usize, rng: &mut impl Rng) -> Option<Graph> {
    // One stub per (node, slot); a uniformly random perfect matching of the
    // stubs induces a d-regular multigraph. Self-loops and multi-edges are
    // then repaired with random double edge swaps, which preserve the degree
    // sequence.
    let mut stubs: Vec<usize> = (0..n * d).map(|s| s / d).collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(usize, usize)> = stubs
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();

    // A BTreeSet, not a HashSet: membership-only today, but ordered
    // collections keep the generator's behaviour independent of RandomState
    // if iteration ever creeps in (determinism contract, lint rule R01).
    use std::collections::BTreeSet;
    let canonical = |u: usize, v: usize| if u < v { (u, v) } else { (v, u) };
    let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
    let is_bad = |u: usize, v: usize, set: &BTreeSet<(usize, usize)>| {
        u == v || set.contains(&canonical(u, v))
    };
    for &(u, v) in &pairs {
        if u != v {
            // Multi-edges simply fail to insert; they stay "bad" below.
            edge_set.insert(canonical(u, v));
        }
    }
    // Repair loop: repeatedly pick a bad pair and swap one endpoint with a
    // random other pair. Each successful swap strictly reduces badness in
    // expectation; cap the work to avoid pathological spins.
    let max_swaps = 200 * pairs.len() + 10_000;
    let mut swaps = 0usize;
    loop {
        // Recompute the set exactly (cheap relative to simulation sizes) so
        // duplicates are tracked correctly.
        edge_set.clear();
        let mut bad_indices = Vec::new();
        for (idx, &(u, v)) in pairs.iter().enumerate() {
            if u == v || !edge_set.insert(canonical(u, v)) {
                bad_indices.push(idx);
            }
        }
        if bad_indices.is_empty() {
            break;
        }
        for &idx in &bad_indices {
            swaps += 1;
            if swaps > max_swaps {
                return None;
            }
            let other = rng.gen_range(0..pairs.len());
            if other == idx {
                continue;
            }
            let (a, b) = pairs[idx];
            let (c, e) = pairs[other];
            // Swap to (a, e) and (c, b); accept only if both are non-loops
            // and do not duplicate existing edges (best effort: the next
            // outer pass re-validates everything).
            if !is_bad(a, e, &edge_set)
                && !is_bad(c, b, &edge_set)
                && canonical(a, e) != canonical(c, b)
            {
                pairs[idx] = (a, e);
                pairs[other] = (c, b);
                edge_set.insert(canonical(a, e));
                edge_set.insert(canonical(c, b));
            }
        }
    }

    let mut builder = GraphBuilder::new(n);
    for (u, v) in pairs {
        match builder.add_edge(u, v) {
            Ok(true) => {}
            Ok(false) => return None,
            Err(_) => unreachable!("stub endpoints are always in range"),
        }
    }
    Some(builder.build())
}

/// Generates a connected Erdős–Rényi graph `G(n, p)` by sampling until the
/// result is connected.
///
/// This is the "arbitrary graph" family used in experiments: it is neither
/// regular nor vertex-transitive and its expansion depends on `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`, if `p` is not in
/// `(0, 1]`, or if no connected sample was found after an internal retry
/// limit (use a larger `p` in that case).
pub fn erdos_renyi_connected(n: usize, p: f64, rng: &mut impl Rng) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::invalid_parameter("G(n, p) requires n >= 2"));
    }
    if !(p > 0.0 && p <= 1.0) {
        return Err(GraphError::invalid_parameter(format!(
            "edge probability must be in (0, 1], got {p}"
        )));
    }
    const MAX_ATTEMPTS: usize = 100;
    for _ in 0..MAX_ATTEMPTS {
        let mut builder = GraphBuilder::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(p) {
                    builder.add_edge(u, v).expect("edge endpoints in range");
                }
            }
        }
        let g = builder.build();
        if g.is_connected() {
            return Ok(g.with_name(format!("erdos_renyi(n={n}, p={p})")));
        }
    }
    Err(GraphError::invalid_parameter(format!(
        "failed to sample a connected G({n}, {p}); increase p"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [2usize, 3, 4, 6] {
            let g = random_regular(50, d, &mut rng).unwrap();
            assert!(g.is_regular(), "d = {d}");
            assert_eq!(g.max_degree(), d);
            assert!(g.is_connected());
            assert_eq!(g.edge_count(), 50 * d / 2);
        }
    }

    #[test]
    fn random_regular_is_deterministic_per_seed() {
        let g1 = random_regular(40, 4, &mut StdRng::seed_from_u64(99)).unwrap();
        let g2 = random_regular(40, 4, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(random_regular(10, 0, &mut rng).is_err());
        assert!(random_regular(10, 10, &mut rng).is_err());
        assert!(random_regular(5, 3, &mut rng).is_err(), "odd n*d");
    }

    #[test]
    fn erdos_renyi_connected_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_connected(40, 0.15, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 40);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn erdos_renyi_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(erdos_renyi_connected(1, 0.5, &mut rng).is_err());
        assert!(erdos_renyi_connected(10, 0.0, &mut rng).is_err());
        assert!(erdos_renyi_connected(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn erdos_renyi_full_probability_is_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(8, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 8 * 7 / 2);
    }
}
