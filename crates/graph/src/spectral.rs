//! Spectral quantities used in convergence-time estimates.
//!
//! The continuous first-order diffusion balances in
//! `T = O(log(K·n) / (1 − λ))` rounds, where `λ` is the second-largest
//! eigenvalue (in absolute value) of the diffusion matrix `P`, and the
//! random-matching process balances in `O(d · log(K·n) / γ)` rounds, where
//! `γ` is the second-smallest eigenvalue of the graph Laplacian. This module
//! computes `λ` and `γ` with deflated power iteration — no external linear
//! algebra dependency is required at the experiment scales used here.

use crate::graph::Graph;
use crate::matrix::DiffusionMatrix;

/// Options controlling the power-iteration routines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIterationOptions {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the eigenvalue estimate between iterations.
    pub tolerance: f64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions {
            max_iterations: 20_000,
            tolerance: 1e-10,
        }
    }
}

/// Estimates `λ`, the second-largest eigenvalue *in absolute value* of the
/// diffusion matrix `P`.
///
/// The matrix `P` with heterogeneous speeds is similar to the symmetric
/// matrix `M[i][j] = α[i][j] / √(s_i · s_j)` (with the same diagonal), whose
/// top eigenvector is `(√s_1, …, √s_n)` with eigenvalue 1. We deflate that
/// eigenvector and run power iteration on `M²` (so that eigenvalues `±λ` of
/// equal magnitude — e.g. on bipartite graphs — do not cause oscillation);
/// the dominant value of the deflated `M²` is `λ²`.
///
/// Returns a value in `[0, 1]` (clamped against round-off).
///
/// # Panics
///
/// Panics if the matrix was built for a different graph (debug builds) or the
/// graph is empty.
pub fn second_eigenvalue(
    graph: &Graph,
    matrix: &DiffusionMatrix,
    options: PowerIterationOptions,
) -> f64 {
    let n = graph.node_count();
    assert!(n > 0, "second_eigenvalue requires a non-empty graph");
    if n == 1 {
        return 0.0;
    }
    let speeds = matrix.speeds();
    // Top eigenvector of the symmetrised matrix, normalised.
    let mut top: Vec<f64> = speeds.iter().map(|s| s.sqrt()).collect();
    normalize(&mut top);

    // Multiply the symmetrised matrix by a vector.
    let sym_apply = |v: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0; n];
        for i in 0..n {
            out[i] += matrix.diagonal(i) * v[i];
        }
        for (e, &(u, w)) in graph.edges().iter().enumerate() {
            let coupling = matrix.alpha(e) / (speeds[u] * speeds[w]).sqrt();
            out[u] += coupling * v[w];
            out[w] += coupling * v[u];
        }
        out
    };
    // One iteration step: apply M twice and project away the top eigenvector.
    let step = |v: &[f64]| -> Vec<f64> {
        let mut out = sym_apply(&sym_apply(v));
        deflate(&mut out, &top);
        out
    };

    // Deterministic, generic start vector; deflation removes the top
    // component before iterating.
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.754_877_666 + 0.1).sin())
        .collect();
    deflate(&mut v, &top);
    normalize(&mut v);

    let mut estimate_sq = 0.0;
    for _ in 0..options.max_iterations {
        let mut next = step(&v);
        let norm = l2_norm(&next);
        if norm < 1e-15 {
            // The deflated spectrum is numerically zero.
            return 0.0;
        }
        for x in &mut next {
            *x /= norm;
        }
        // Rayleigh quotient of M^2 at the current unit vector: converges to
        // lambda^2 monotonically from below for power iteration.
        let rayleigh_sq: f64 = dot(&next, &step(&next)).max(0.0);
        if (rayleigh_sq - estimate_sq).abs() < options.tolerance {
            return rayleigh_sq.sqrt().clamp(0.0, 1.0);
        }
        estimate_sq = rayleigh_sq;
        v = next;
    }
    estimate_sq.sqrt().clamp(0.0, 1.0)
}

/// Estimates `γ`, the second-smallest eigenvalue of the graph Laplacian
/// `L = D − A` (the algebraic connectivity).
///
/// Uses power iteration on `c·I − L` with `c = 2·d_max + 1 ≥ λ_max(L)`,
/// deflating the all-ones vector (the eigenvector of `L` for eigenvalue 0).
/// The dominant eigenvalue of the deflated operator is `c − γ`.
///
/// Returns 0.0 for disconnected graphs (up to numerical tolerance).
///
/// # Panics
///
/// Panics if the graph is empty.
pub fn laplacian_gap(graph: &Graph, options: PowerIterationOptions) -> f64 {
    let n = graph.node_count();
    assert!(n > 0, "laplacian_gap requires a non-empty graph");
    if n == 1 {
        return 0.0;
    }
    let c = 2.0 * graph.max_degree() as f64 + 1.0;
    let ones = {
        let mut v = vec![1.0; n];
        normalize(&mut v);
        v
    };
    let apply = |v: &[f64]| -> Vec<f64> {
        // (c I - L) v = c v - D v + A v
        let mut out: Vec<f64> = (0..n)
            .map(|i| (c - graph.degree(i) as f64) * v[i])
            .collect();
        for &(u, w) in graph.edges() {
            out[u] += v[w];
            out[w] += v[u];
        }
        out
    };
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 1.234_567 + 0.37).cos())
        .collect();
    deflate(&mut v, &ones);
    normalize(&mut v);
    let mut estimate = 0.0;
    for _ in 0..options.max_iterations {
        let mut next = apply(&v);
        deflate(&mut next, &ones);
        let norm = l2_norm(&next);
        if norm < 1e-300 {
            return c;
        }
        for x in &mut next {
            *x /= norm;
        }
        let rayleigh = dot(&next, &apply(&next));
        if (rayleigh - estimate).abs() < options.tolerance {
            return (c - rayleigh).max(0.0);
        }
        estimate = rayleigh;
        v = next;
    }
    (c - estimate).max(0.0)
}

/// Estimated balancing time of continuous FOS: `⌈log(K·n) / (1 − λ)⌉`, where
/// `K` is the initial discrepancy. Returns at least 1.
///
/// This is the quantity `T` used throughout the paper; the engine uses it as
/// a default horizon when an explicit round budget is not given.
pub fn estimate_fos_balancing_time(lambda: f64, initial_discrepancy: f64, n: usize) -> usize {
    let lambda = lambda.clamp(0.0, 1.0 - 1e-9);
    let k = initial_discrepancy.max(1.0);
    let t = ((k * n as f64).ln() / (1.0 - lambda)).ceil();
    (t as usize).max(1)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn l2_norm(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let norm = l2_norm(v);
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Removes the component of `v` along the (unit-norm) direction `dir`.
fn deflate(v: &mut [f64], dir: &[f64]) {
    let proj = dot(v, dir);
    for (x, d) in v.iter_mut().zip(dir) {
        *x -= proj * d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matrix::AlphaScheme;

    fn lambda_of(graph: &Graph) -> f64 {
        let p = DiffusionMatrix::uniform(graph, AlphaScheme::MaxDegreePlusOne).unwrap();
        second_eigenvalue(graph, &p, PowerIterationOptions::default())
    }

    #[test]
    fn complete_graph_lambda_matches_closed_form() {
        // For K_n with alpha = 1/n, P = (1 - (n-1)/n) I + (1/n) (J - I)
        // = (1/n) J, except diagonal: P_ii = 1/n. So P = J/n and the spectrum
        // is {1, 0, ..., 0}: lambda = 0.
        let g = generators::complete(8).unwrap();
        let lambda = lambda_of(&g);
        assert!(lambda.abs() < 1e-6, "lambda = {lambda}");
    }

    #[test]
    fn cycle_lambda_matches_closed_form() {
        // Cycle C_n with alpha = 1/3: P = I/3 + A/3, eigenvalues
        // (1 + 2cos(2 pi k / n)) / 3; second largest magnitude is
        // (1 + 2cos(2 pi / n)) / 3 for odd n (no -1 issue).
        let n = 9;
        let g = generators::cycle(n).unwrap();
        let lambda = lambda_of(&g);
        let expected = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) / 3.0;
        assert!(
            (lambda - expected).abs() < 1e-6,
            "lambda = {lambda}, expected {expected}"
        );
    }

    #[test]
    fn even_cycle_negative_branch_is_captured() {
        // For even cycles the most negative eigenvalue is (1 - 2)/3 = -1/3,
        // but the second largest positive one dominates in magnitude, so the
        // result is the same closed form as above.
        let n = 12;
        let g = generators::cycle(n).unwrap();
        let lambda = lambda_of(&g);
        let expected = (1.0 + 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos()) / 3.0;
        assert!((lambda - expected).abs() < 1e-6);
    }

    #[test]
    fn hypercube_lambda_closed_form() {
        // Hypercube Q_d with alpha = 1/(d+1): eigenvalues are
        // 1 - 2k/(d+1) for k = 0..d; the second-largest magnitude is
        // 1 - 2/(d+1).
        let d = 5u32;
        let g = generators::hypercube(d).unwrap();
        let lambda = lambda_of(&g);
        let expected = 1.0 - 2.0 / (d as f64 + 1.0);
        assert!(
            (lambda - expected).abs() < 1e-6,
            "lambda = {lambda}, expected {expected}"
        );
    }

    #[test]
    fn lambda_is_smaller_for_better_expanders() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let expander = generators::random_regular(64, 6, &mut rng).unwrap();
        let ring = generators::cycle(64).unwrap();
        assert!(lambda_of(&expander) < lambda_of(&ring));
    }

    #[test]
    fn laplacian_gap_cycle_closed_form() {
        // gamma(C_n) = 2 - 2 cos(2 pi / n)
        let n = 10;
        let g = generators::cycle(n).unwrap();
        let gamma = laplacian_gap(&g, PowerIterationOptions::default());
        let expected = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (gamma - expected).abs() < 1e-6,
            "gamma = {gamma}, expected {expected}"
        );
    }

    #[test]
    fn laplacian_gap_complete_graph() {
        // gamma(K_n) = n
        let g = generators::complete(7).unwrap();
        let gamma = laplacian_gap(&g, PowerIterationOptions::default());
        assert!((gamma - 7.0).abs() < 1e-6, "gamma = {gamma}");
    }

    #[test]
    fn laplacian_gap_barbell_is_small() {
        let barbell = generators::barbell(8, 2).unwrap();
        let expander = generators::complete(18).unwrap();
        let g1 = laplacian_gap(&barbell, PowerIterationOptions::default());
        let g2 = laplacian_gap(&expander, PowerIterationOptions::default());
        assert!(g1 < g2 / 10.0, "barbell gap {g1} vs complete gap {g2}");
    }

    #[test]
    fn balancing_time_estimate_is_monotone_in_lambda() {
        let t_fast = estimate_fos_balancing_time(0.5, 100.0, 64);
        let t_slow = estimate_fos_balancing_time(0.99, 100.0, 64);
        assert!(t_slow > t_fast);
        assert!(estimate_fos_balancing_time(0.0, 1.0, 1) >= 1);
    }

    #[test]
    fn single_node_graph_is_degenerate() {
        let g = Graph::from_edges(1, []).unwrap();
        let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert_eq!(
            second_eigenvalue(&g, &p, PowerIterationOptions::default()),
            0.0
        );
        assert_eq!(laplacian_gap(&g, PowerIterationOptions::default()), 0.0);
    }
}
