//! Error types for graph construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied; the load-balancing model forbids them.
    SelfLoop {
        /// The node carrying the self-loop.
        node: usize,
    },
    /// The same undirected edge was supplied more than once.
    DuplicateEdge {
        /// First endpoint (canonical, smaller index).
        u: usize,
        /// Second endpoint (canonical, larger index).
        v: usize,
    },
    /// A generator was asked for an impossible parameter combination.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        reason: String,
    },
    /// The requested operation requires a non-empty graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate undirected edge ({u}, {v})")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl Error for GraphError {}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub fn invalid_parameter(reason: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 4 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("4"));

        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));

        let e = GraphError::invalid_parameter("degree must be even");
        assert!(e.to_string().contains("degree must be even"));

        let e = GraphError::EmptyGraph;
        assert!(e.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::EmptyGraph);
        assert!(e.source().is_none());
    }
}
