//! The core undirected [`Graph`] type used by every load-balancing process.
//!
//! The representation is a compressed-sparse-row (CSR) adjacency structure
//! augmented with a canonical undirected edge list, so that per-edge state
//! (e.g. cumulative flow in a balancing process) can be stored in a flat
//! `Vec` indexed by [`EdgeId`].

use crate::error::GraphError;
use std::collections::VecDeque;
use std::fmt;

/// Index of a node in a [`Graph`]. Nodes are numbered `0..n`.
pub type NodeId = usize;

/// Index of an undirected edge in a [`Graph`]. Edges are numbered `0..m` in
/// the canonical order returned by [`Graph::edges`].
pub type EdgeId = usize;

/// An immutable, simple, undirected graph in CSR form.
///
/// Invariants upheld by construction:
/// * no self-loops,
/// * no duplicate undirected edges,
/// * neighbour lists are sorted by node index,
/// * the canonical edge list stores each edge once as `(u, v)` with `u < v`.
///
/// # Examples
///
/// ```
/// use lb_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_connected());
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened neighbour lists, length `2m`.
    adjacency: Vec<NodeId>,
    /// For each adjacency slot, the id of the undirected edge it belongs to.
    adjacency_edge: Vec<EdgeId>,
    /// Canonical edge list: `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    /// Optional human-readable name (e.g. `"hypercube(10)"`).
    name: String,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Edges may be given in either orientation; they are canonicalised to
    /// `(min, max)` order and sorted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for an edge `(u, u)`, and
    /// [`GraphError::DuplicateEdge`] if the same undirected edge appears twice.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut canonical: Vec<(NodeId, NodeId)> = Vec::new();
        for (a, b) in edges {
            if a >= n {
                return Err(GraphError::NodeOutOfRange { node: a, n });
            }
            if b >= n {
                return Err(GraphError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            canonical.push((u, v));
        }
        canonical.sort_unstable();
        for w in canonical.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge {
                    u: w[0].0,
                    v: w[0].1,
                });
            }
        }
        Ok(Self::from_canonical_edges(n, canonical))
    }

    /// Builds a graph from a pre-validated, sorted, canonical edge list.
    ///
    /// Used internally by generators that construct edges in canonical form.
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            // lint: allow(R03, offsets starts with one element pushed above)
            let last = *offsets.last().expect("offsets is never empty");
            offsets.push(last + d);
        }
        let total = offsets[n];
        let mut adjacency = vec![0usize; total];
        let mut adjacency_edge = vec![0usize; total];
        let mut cursor = offsets[..n].to_vec();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            adjacency[cursor[u]] = v;
            adjacency_edge[cursor[u]] = eid;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            adjacency_edge[cursor[v]] = eid;
            cursor[v] += 1;
        }
        // Sort each neighbour list (and the parallel edge-id list) by node id.
        for u in 0..n {
            let range = offsets[u]..offsets[u + 1];
            let mut pairs: Vec<(NodeId, EdgeId)> = adjacency[range.clone()]
                .iter()
                .copied()
                .zip(adjacency_edge[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (slot, (nbr, eid)) in range.clone().zip(pairs) {
                adjacency[slot] = nbr;
                adjacency_edge[slot] = eid;
            }
        }
        Graph {
            n,
            offsets,
            adjacency,
            adjacency_edge,
            edges,
            name: String::new(),
        }
    }

    /// Sets a human-readable name for the graph (used in experiment reports).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns the graph's human-readable name, or `""` if none was set.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterator over all node indices `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n
    }

    /// The canonical undirected edge list; `edges()[e]` are the endpoints of
    /// edge `e` with the smaller endpoint first.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Endpoints of edge `e` (smaller endpoint first).
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.edge_count()`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Maximum degree `d` over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Returns `true` if every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Sorted slice of the neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Iterator over `(neighbour, edge_id)` pairs for node `u`, sorted by
    /// neighbour index.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn neighbors_with_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let range = self.offsets[u]..self.offsets[u + 1];
        self.adjacency[range.clone()]
            .iter()
            .copied()
            .zip(self.adjacency_edge[range].iter().copied())
    }

    /// Returns the edge id of the undirected edge between `u` and `v`, or
    /// `None` if they are not adjacent.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let range = self.offsets[u]..self.offsets[u + 1];
        let nbrs = &self.adjacency[range.clone()];
        let pos = nbrs.binary_search(&v).ok()?;
        Some(self.adjacency_edge[range.start + pos])
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Returns `true` if the graph is connected (the empty graph and the
    /// single-node graph count as connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let visited = self.bfs_distances(0);
        visited.iter().all(|d| d.is_some())
    }

    /// BFS distances from `source`; `None` marks unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source >= self.node_count()`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        assert!(source < self.n, "source {source} out of range");
        let mut dist = vec![None; self.n];
        dist[source] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            // lint: allow(R03, BFS sets dist before enqueueing every node)
            let du = dist[u].expect("queued nodes always have a distance");
            for &v in self.neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Exact diameter via repeated BFS.
    ///
    /// Runs in `O(n · (n + m))`; intended for the moderate graph sizes used in
    /// experiments. Returns `None` for disconnected or empty graphs.
    pub fn diameter(&self) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let mut best = 0usize;
        for u in self.nodes() {
            let dist = self.bfs_distances(u);
            for d in &dist {
                match d {
                    Some(d) => best = best.max(*d),
                    None => return None,
                }
            }
        }
        Some(best)
    }

    /// Returns `true` if the graph is bipartite (2-colourable).
    ///
    /// Useful because the standard diffusion matrix on bipartite regular
    /// graphs can have eigenvalue `-1`, which stalls convergence.
    pub fn is_bipartite(&self) -> bool {
        let mut colour: Vec<Option<bool>> = vec![None; self.n];
        for start in self.nodes() {
            if colour[start].is_some() {
                continue;
            }
            colour[start] = Some(false);
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                // lint: allow(R03, BFS colours before enqueueing every node)
                let cu = colour[u].expect("queued nodes are coloured");
                for &v in self.neighbors(u) {
                    match colour[v] {
                        None => {
                            colour[v] = Some(!cu);
                            queue.push_back(v);
                        }
                        Some(cv) if cv == cu => return false,
                        Some(_) => {}
                    }
                }
            }
        }
        true
    }

    /// Sum of all node degrees (equals `2m`).
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Average degree `2m / n`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.degree_sum() as f64 / self.n as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "graph(n={}, m={})", self.n, self.edges.len())
        } else {
            write!(f, "{}(n={}, m={})", self.name, self.n, self.edges.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).expect("valid cycle")
    }

    #[test]
    fn from_edges_basic_counts() {
        let g = cycle4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree_sum(), 8);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(0, 4), (0, 2), (0, 1), (0, 3)]).expect("star");
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn edge_between_and_endpoints_agree() {
        let g = cycle4();
        for e in 0..g.edge_count() {
            let (u, v) = g.edge_endpoints(e);
            assert!(u < v);
            assert_eq!(g.edge_between(u, v), Some(e));
            assert_eq!(g.edge_between(v, u), Some(e));
        }
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_with_edges_matches_edge_between() {
        let g = cycle4();
        for u in g.nodes() {
            for (v, e) in g.neighbors_with_edges(u) {
                assert_eq!(g.edge_between(u, v), Some(e));
            }
        }
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 3, n: 3 });
    }

    #[test]
    fn rejects_self_loops() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn rejects_duplicate_edges_in_either_orientation() {
        let err = Graph::from_edges(3, [(0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn connectivity_and_diameter() {
        let g = cycle4();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(2));

        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).expect("two components");
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.diameter(), None);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).expect("path");
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bipartite_detection() {
        assert!(cycle4().is_bipartite());
        let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).expect("triangle");
        assert!(!triangle.is_bipartite());
    }

    #[test]
    fn regularity() {
        assert!(cycle4().is_regular());
        let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).expect("star");
        assert!(!star.is_regular());
        assert_eq!(star.max_degree(), 3);
        assert_eq!(star.min_degree(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Graph::from_edges(0, []).expect("empty");
        assert!(empty.is_empty());
        assert!(empty.is_connected());
        assert_eq!(empty.max_degree(), 0);
        assert_eq!(empty.diameter(), None);

        let singleton = Graph::from_edges(1, []).expect("singleton");
        assert!(singleton.is_connected());
        assert_eq!(singleton.diameter(), Some(0));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let g = cycle4().with_name("cycle");
        assert_eq!(g.name(), "cycle");
        assert!(format!("{g}").contains("cycle"));
        assert!(format!("{g:?}").contains("Graph"));
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
