//! The core undirected [`Graph`] type used by every load-balancing process.
//!
//! The representation is a compressed-sparse-row (CSR) adjacency structure
//! augmented with a canonical undirected edge list, so that per-edge state
//! (e.g. cumulative flow in a balancing process) can be stored in a flat
//! `Vec` indexed by [`EdgeId`].

use crate::error::GraphError;
use std::collections::VecDeque;
use std::fmt;

/// Index of a node in a [`Graph`]. Nodes are numbered `0..n`.
pub type NodeId = usize;

/// Index of an undirected edge in a [`Graph`]. Edges are numbered `0..m` in
/// the canonical order returned by [`Graph::edges`].
pub type EdgeId = usize;

/// An immutable, simple, undirected graph in CSR form.
///
/// Invariants upheld by construction:
/// * no self-loops,
/// * no duplicate undirected edges,
/// * neighbour lists are sorted by node index,
/// * the canonical edge list stores each edge once as `(u, v)` with `u < v`.
///
/// # Examples
///
/// ```
/// use lb_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_connected());
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened neighbour lists, length `2m`.
    adjacency: Vec<NodeId>,
    /// For each adjacency slot, the id of the undirected edge it belongs to.
    adjacency_edge: Vec<EdgeId>,
    /// Canonical edge list: `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(NodeId, NodeId)>,
    /// Optional human-readable name (e.g. `"hypercube(10)"`).
    name: String,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Edges may be given in either orientation; they are canonicalised to
    /// `(min, max)` order and sorted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for an edge `(u, u)`, and
    /// [`GraphError::DuplicateEdge`] if the same undirected edge appears twice.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut canonical: Vec<(NodeId, NodeId)> = Vec::new();
        for (a, b) in edges {
            if a >= n {
                return Err(GraphError::NodeOutOfRange { node: a, n });
            }
            if b >= n {
                return Err(GraphError::NodeOutOfRange { node: b, n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            canonical.push((u, v));
        }
        canonical.sort_unstable();
        for w in canonical.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge {
                    u: w[0].0,
                    v: w[0].1,
                });
            }
        }
        Ok(Self::from_canonical_edges(n, canonical))
    }

    /// Builds a graph from a pre-validated, sorted, canonical edge list.
    ///
    /// Used internally by generators that construct edges in canonical form.
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            // lint: allow(R03, offsets starts with one element pushed above)
            let last = *offsets.last().expect("offsets is never empty");
            offsets.push(last + d);
        }
        let total = offsets[n];
        let mut adjacency = vec![0usize; total];
        let mut adjacency_edge = vec![0usize; total];
        let mut cursor = offsets[..n].to_vec();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            adjacency[cursor[u]] = v;
            adjacency_edge[cursor[u]] = eid;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            adjacency_edge[cursor[v]] = eid;
            cursor[v] += 1;
        }
        // Sort each neighbour list (and the parallel edge-id list) by node id.
        for u in 0..n {
            let range = offsets[u]..offsets[u + 1];
            let mut pairs: Vec<(NodeId, EdgeId)> = adjacency[range.clone()]
                .iter()
                .copied()
                .zip(adjacency_edge[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (slot, (nbr, eid)) in range.clone().zip(pairs) {
                adjacency[slot] = nbr;
                adjacency_edge[slot] = eid;
            }
        }
        Graph {
            n,
            offsets,
            adjacency,
            adjacency_edge,
            edges,
            name: String::new(),
        }
    }

    /// Sets a human-readable name for the graph (used in experiment reports).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Computes the edge-set difference from `self` to `target`: the delta
    /// `d` with `self.apply_delta(&d) == target` (up to the name). Both
    /// graphs must have the same node count — deltas describe edge churn
    /// (rewiring), not node churn.
    ///
    /// Runs in `O(m + m')` (one merge walk over the two sorted canonical
    /// edge lists); the delta itself has `O(Δ)` entries.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the node counts differ.
    pub fn delta_to(&self, target: &Graph) -> Result<GraphDelta, GraphError> {
        if self.n != target.n {
            return Err(GraphError::invalid_parameter(format!(
                "delta requires equal node counts, got {} and {}",
                self.n, target.n
            )));
        }
        let mut removed = Vec::new();
        let mut added = Vec::new();
        let (old, new) = (&self.edges, &target.edges);
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() || j < new.len() {
            match (old.get(i), new.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    removed.push(a);
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    added.push(b);
                    j += 1;
                }
                (Some(&a), None) => {
                    removed.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    added.push(b);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        Ok(GraphDelta { removed, added })
    }

    /// Applies an edge delta, producing the patched graph: `delta.removed`
    /// edges are dropped, `delta.added` edges inserted, and the CSR structure
    /// is rebuilt from the spliced canonical list. The node count and the
    /// graph name carry over unchanged.
    ///
    /// The splice is a single merge walk (`O(m + Δ)` index work, no
    /// per-edge validation re-sort), so patching is dominated by the CSR
    /// fill — linear in the *surviving* edges with small constants, with no
    /// family generator or RNG in the loop.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] for
    /// malformed added edges, [`GraphError::DuplicateEdge`] if an added edge
    /// already exists (or appears twice), and
    /// [`GraphError::InvalidParameter`] if a removed edge is absent or the
    /// delta lists are not canonically sorted.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Self, GraphError> {
        delta.check_canonical(self.n)?;
        // Every removed edge must exist in the base graph.
        for &(u, v) in &delta.removed {
            if self.edges.binary_search(&(u, v)).is_err() {
                return Err(GraphError::invalid_parameter(format!(
                    "delta removes edge ({u}, {v}), which is not in the graph"
                )));
            }
        }
        let target_m = (self.edges.len() + delta.added.len())
            .checked_sub(delta.removed.len())
            .ok_or_else(|| {
                GraphError::invalid_parameter("delta removes more edges than the graph has")
            })?;
        let mut spliced = Vec::with_capacity(target_m);
        let mut removed = delta.removed.iter().copied().peekable();
        let mut added = delta.added.iter().copied().peekable();
        for &edge in &self.edges {
            // Insert pending additions that sort before this edge.
            while added.peek().is_some_and(|&a| a < edge) {
                // lint: allow(R03, the peek in the loop condition proves Some)
                spliced.push(added.next().expect("peeked entry"));
            }
            if added.peek() == Some(&edge) {
                return Err(GraphError::DuplicateEdge {
                    u: edge.0,
                    v: edge.1,
                });
            }
            if removed.peek() == Some(&edge) {
                removed.next();
            } else {
                spliced.push(edge);
            }
        }
        spliced.extend(added);
        debug_assert_eq!(spliced.len(), target_m);
        debug_assert!(spliced.windows(2).all(|w| w[0] < w[1]));
        Ok(Self::from_canonical_edges(self.n, spliced).with_name(self.name.clone()))
    }

    /// Returns the graph's human-readable name, or `""` if none was set.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterator over all node indices `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n
    }

    /// The canonical undirected edge list; `edges()[e]` are the endpoints of
    /// edge `e` with the smaller endpoint first.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Endpoints of edge `e` (smaller endpoint first).
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.edge_count()`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Maximum degree `d` over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Returns `true` if every node has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Sorted slice of the neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Iterator over `(neighbour, edge_id)` pairs for node `u`, sorted by
    /// neighbour index.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.node_count()`.
    pub fn neighbors_with_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let range = self.offsets[u]..self.offsets[u + 1];
        self.adjacency[range.clone()]
            .iter()
            .copied()
            .zip(self.adjacency_edge[range].iter().copied())
    }

    /// Returns the edge id of the undirected edge between `u` and `v`, or
    /// `None` if they are not adjacent.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let range = self.offsets[u]..self.offsets[u + 1];
        let nbrs = &self.adjacency[range.clone()];
        let pos = nbrs.binary_search(&v).ok()?;
        Some(self.adjacency_edge[range.start + pos])
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Returns `true` if the graph is connected (the empty graph and the
    /// single-node graph count as connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let visited = self.bfs_distances(0);
        visited.iter().all(|d| d.is_some())
    }

    /// BFS distances from `source`; `None` marks unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source >= self.node_count()`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        assert!(source < self.n, "source {source} out of range");
        let mut dist = vec![None; self.n];
        dist[source] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            // lint: allow(R03, BFS sets dist before enqueueing every node)
            let du = dist[u].expect("queued nodes always have a distance");
            for &v in self.neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Exact diameter via repeated BFS.
    ///
    /// Runs in `O(n · (n + m))`; intended for the moderate graph sizes used in
    /// experiments. Returns `None` for disconnected or empty graphs.
    pub fn diameter(&self) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let mut best = 0usize;
        for u in self.nodes() {
            let dist = self.bfs_distances(u);
            for d in &dist {
                match d {
                    Some(d) => best = best.max(*d),
                    None => return None,
                }
            }
        }
        Some(best)
    }

    /// Returns `true` if the graph is bipartite (2-colourable).
    ///
    /// Useful because the standard diffusion matrix on bipartite regular
    /// graphs can have eigenvalue `-1`, which stalls convergence.
    pub fn is_bipartite(&self) -> bool {
        let mut colour: Vec<Option<bool>> = vec![None; self.n];
        for start in self.nodes() {
            if colour[start].is_some() {
                continue;
            }
            colour[start] = Some(false);
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                // lint: allow(R03, BFS colours before enqueueing every node)
                let cu = colour[u].expect("queued nodes are coloured");
                for &v in self.neighbors(u) {
                    match colour[v] {
                        None => {
                            colour[v] = Some(!cu);
                            queue.push_back(v);
                        }
                        Some(cv) if cv == cu => return false,
                        Some(_) => {}
                    }
                }
            }
        }
        true
    }

    /// Sum of all node degrees (equals `2m`).
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Average degree `2m / n`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.degree_sum() as f64 / self.n as f64
        }
    }
}

/// An edge-set difference between two graphs on the same node set.
///
/// Both lists hold canonical `(u, v)` pairs with `u < v`, sorted ascending
/// and duplicate-free, and the two lists are disjoint. Produced by
/// [`Graph::delta_to`] or built directly via [`GraphDelta::new`]; consumed by
/// [`Graph::apply_delta`]. A delta is only meaningful relative to the graph
/// it was computed against — applying it elsewhere fails validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges present in the base graph and absent from the target.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Edges absent from the base graph and present in the target.
    pub added: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// Builds a delta from raw add/remove lists, canonicalising each pair to
    /// `u < v` and sorting. Endpoints are validated against `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] for
    /// malformed pairs, [`GraphError::DuplicateEdge`] for a repeated pair
    /// within a list, and [`GraphError::InvalidParameter`] if an edge appears
    /// in both lists (a contradictory delta).
    pub fn new(
        n: usize,
        added: impl IntoIterator<Item = (NodeId, NodeId)>,
        removed: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let canonicalise = |pairs: Vec<(NodeId, NodeId)>| -> Result<Vec<_>, GraphError> {
            let mut out = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                if a >= n {
                    return Err(GraphError::NodeOutOfRange { node: a, n });
                }
                if b >= n {
                    return Err(GraphError::NodeOutOfRange { node: b, n });
                }
                if a == b {
                    return Err(GraphError::SelfLoop { node: a });
                }
                out.push((a.min(b), a.max(b)));
            }
            out.sort_unstable();
            if let Some(w) = out.windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::DuplicateEdge {
                    u: w[0].0,
                    v: w[0].1,
                });
            }
            Ok(out)
        };
        let added = canonicalise(added.into_iter().collect())?;
        let removed = canonicalise(removed.into_iter().collect())?;
        if let Some(&(u, v)) = added.iter().find(|e| removed.binary_search(e).is_ok()) {
            return Err(GraphError::invalid_parameter(format!(
                "edge ({u}, {v}) appears in both the add and remove lists"
            )));
        }
        Ok(Self { removed, added })
    }

    /// True when the delta changes nothing — the patched graph equals the
    /// base graph. Callers use this to skip re-derivation work entirely
    /// (e.g. spectral re-estimation for SOS momentum).
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }

    /// Total number of edge insertions plus removals (`Δ`).
    pub fn len(&self) -> usize {
        self.removed.len() + self.added.len()
    }

    /// Nodes whose degree changes under this delta, deduplicated and sorted.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .removed
            .iter()
            .chain(self.added.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Validates the canonical-form invariants against an `n`-node base
    /// graph: every pair `u < v < n`, each list strictly sorted.
    fn check_canonical(&self, n: usize) -> Result<(), GraphError> {
        for list in [&self.removed, &self.added] {
            for &(u, v) in list {
                if u >= v {
                    return Err(GraphError::invalid_parameter(format!(
                        "delta edge ({u}, {v}) is not in canonical u < v form"
                    )));
                }
                if v >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
            }
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(GraphError::invalid_parameter(
                    "delta edge list is not sorted and duplicate-free",
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "graph(n={}, m={})", self.n, self.edges.len())
        } else {
            write!(f, "{}(n={}, m={})", self.name, self.n, self.edges.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).expect("valid cycle")
    }

    #[test]
    fn from_edges_basic_counts() {
        let g = cycle4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree_sum(), 8);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(0, 4), (0, 2), (0, 1), (0, 3)]).expect("star");
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn edge_between_and_endpoints_agree() {
        let g = cycle4();
        for e in 0..g.edge_count() {
            let (u, v) = g.edge_endpoints(e);
            assert!(u < v);
            assert_eq!(g.edge_between(u, v), Some(e));
            assert_eq!(g.edge_between(v, u), Some(e));
        }
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_with_edges_matches_edge_between() {
        let g = cycle4();
        for u in g.nodes() {
            for (v, e) in g.neighbors_with_edges(u) {
                assert_eq!(g.edge_between(u, v), Some(e));
            }
        }
    }

    #[test]
    fn rejects_out_of_range_nodes() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 3, n: 3 });
    }

    #[test]
    fn rejects_self_loops() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn rejects_duplicate_edges_in_either_orientation() {
        let err = Graph::from_edges(3, [(0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn connectivity_and_diameter() {
        let g = cycle4();
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(2));

        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).expect("two components");
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.diameter(), None);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).expect("path");
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bipartite_detection() {
        assert!(cycle4().is_bipartite());
        let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).expect("triangle");
        assert!(!triangle.is_bipartite());
    }

    #[test]
    fn regularity() {
        assert!(cycle4().is_regular());
        let star = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).expect("star");
        assert!(!star.is_regular());
        assert_eq!(star.max_degree(), 3);
        assert_eq!(star.min_degree(), 1);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Graph::from_edges(0, []).expect("empty");
        assert!(empty.is_empty());
        assert!(empty.is_connected());
        assert_eq!(empty.max_degree(), 0);
        assert_eq!(empty.diameter(), None);

        let singleton = Graph::from_edges(1, []).expect("singleton");
        assert!(singleton.is_connected());
        assert_eq!(singleton.diameter(), Some(0));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let g = cycle4().with_name("cycle");
        assert_eq!(g.name(), "cycle");
        assert!(format!("{g}").contains("cycle"));
        assert!(format!("{g:?}").contains("Graph"));
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }

    #[test]
    fn delta_to_and_apply_round_trip() {
        let old = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
            .expect("valid cycle")
            .with_name("c5");
        let new = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (3, 4), (0, 4), (1, 4)])
            .expect("valid rewire");
        let delta = old.delta_to(&new).expect("same node count");
        assert_eq!(delta.removed, vec![(1, 2)]);
        assert_eq!(delta.added, vec![(0, 2), (1, 4)]);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta.touched_nodes(), vec![0, 1, 2, 4]);

        let patched = old.apply_delta(&delta).expect("delta applies");
        assert_eq!(patched.name(), "c5");
        assert_eq!(patched.edges(), new.edges());
        assert_eq!(patched.node_count(), new.node_count());
        for u in patched.nodes() {
            assert_eq!(patched.neighbors(u), new.neighbors(u));
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = cycle4();
        let delta = g.delta_to(&g).expect("same graph");
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        let patched = g.apply_delta(&delta).expect("no-op");
        assert_eq!(patched.edges(), g.edges());
    }

    #[test]
    fn delta_to_rejects_node_count_mismatch() {
        let a = cycle4();
        let b = Graph::from_edges(5, [(0, 1)]).expect("valid");
        assert!(matches!(
            a.delta_to(&b),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn apply_delta_validates_edges() {
        let g = cycle4();
        // Removing an absent edge is rejected.
        let bad_remove = GraphDelta::new(4, [], [(0, 2)]).expect("well-formed");
        assert!(matches!(
            g.apply_delta(&bad_remove),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Adding an existing edge is rejected as a duplicate.
        let bad_add = GraphDelta::new(4, [(1, 0)], []).expect("well-formed");
        assert!(matches!(
            g.apply_delta(&bad_add),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
        // Out-of-range endpoints are caught at delta construction.
        assert!(matches!(
            GraphDelta::new(4, [(0, 9)], []),
            Err(GraphError::NodeOutOfRange { node: 9, n: 4 })
        ));
        assert!(matches!(
            GraphDelta::new(4, [(2, 2)], []),
            Err(GraphError::SelfLoop { node: 2 })
        ));
        // Contradictory add+remove of the same edge is rejected.
        assert!(matches!(
            GraphDelta::new(4, [(0, 2)], [(2, 0)]),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn delta_new_canonicalises_pairs() {
        let delta = GraphDelta::new(6, [(5, 0), (3, 1)], [(4, 2)]).expect("valid");
        assert_eq!(delta.added, vec![(0, 5), (1, 3)]);
        assert_eq!(delta.removed, vec![(2, 4)]);
    }
}
