//! Incremental construction of [`Graph`] values.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// A builder for assembling a [`Graph`] edge by edge.
///
/// Unlike [`Graph::from_edges`], the builder tolerates duplicate edge
/// insertions (they are ignored) which simplifies generator code that may
/// naturally produce the same edge twice (e.g. torus wrap-around edges on
/// side length 2).
///
/// # Examples
///
/// ```
/// use lb_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 1)?; // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), lb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
    name: String,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
            name: String::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of distinct undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sets the graph name recorded on [`build`](Self::build).
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds the undirected edge `{u, v}`. Duplicate insertions are ignored;
    /// returns `true` if the edge was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] for
    /// invalid endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        Ok(self.edges.insert(key))
    }

    /// Returns `true` if the undirected edge `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Finalises the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = self.edges.into_iter().collect();
        let g = Graph::from_canonical_edges(self.n, edges);
        if self.name.is_empty() {
            g
        } else {
            g.with_name(self.name)
        }
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    /// Extends the builder with edges, panicking on invalid endpoints.
    ///
    /// Intended for internal generator use where endpoints are known valid.
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            // lint: allow(R03, documented contract of this internal helper)
            self.add_edge(u, v).expect("edge endpoints must be valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(4);
        assert!(b.add_edge(0, 1).unwrap());
        assert!(b.add_edge(2, 3).unwrap());
        assert!(!b.add_edge(1, 0).unwrap(), "duplicate reports false");
        assert_eq!(b.edge_count(), 2);
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        ));
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn name_is_propagated() {
        let mut b = GraphBuilder::new(2);
        b.set_name("pair");
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.name(), "pair");
    }

    #[test]
    fn extend_adds_edges() {
        let mut b = GraphBuilder::new(4);
        b.extend([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.edge_count(), 3);
    }

    #[test]
    fn default_builder_is_empty() {
        let b = GraphBuilder::default();
        assert_eq!(b.node_count(), 0);
        assert_eq!(b.edge_count(), 0);
        let g = b.build();
        assert!(g.is_empty());
    }
}
