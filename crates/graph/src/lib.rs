//! # lb-graph
//!
//! Graph substrate for neighbourhood load balancing: an immutable CSR
//! [`Graph`] type, generators for the graph families used in the paper's
//! comparison tables, a speed-aware [`DiffusionMatrix`], spectral estimates
//! (`λ`, `γ`, balancing-time), and matching machinery for dimension-exchange
//! models.
//!
//! This crate is the lowest layer of the reproduction of *"A Simple Approach
//! for Adapting Continuous Load Balancing Processes to Discrete Settings"*
//! (Akbari, Berenbrink, Sauerwald — PODC 2012); the balancing processes
//! themselves live in `lb-core`.
//!
//! ## Quick example
//!
//! ```
//! use lb_graph::{generators, AlphaScheme, DiffusionMatrix, spectral};
//!
//! let g = generators::hypercube(6)?;
//! let p = DiffusionMatrix::uniform(&g, AlphaScheme::MaxDegreePlusOne)?;
//! let lambda = spectral::second_eigenvalue(&g, &p, Default::default());
//! let t = spectral::estimate_fos_balancing_time(lambda, 1000.0, g.node_count());
//! assert!(lambda < 1.0 && t > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod error;
pub mod generators;
mod graph;
mod matching;
mod matrix;
pub mod spectral;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, GraphDelta, NodeId};
pub use matching::{random_maximal_matching, Matching, PeriodicMatchings};
pub use matrix::{AlphaScheme, DiffusionMatrix};
pub use spectral::PowerIterationOptions;
