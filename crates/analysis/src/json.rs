//! A minimal JSON value type with a pretty printer and a recursive-descent
//! parser.
//!
//! The workspace builds offline (no `serde`/`serde_json`), so the experiment
//! records and the `BENCH_hotpath.json` perf artefact are produced and read
//! through this module instead. It supports the full JSON grammar except for
//! exotic number forms (`NaN`/`Infinity` are rejected on write).
//!
//! Numbers written without a fraction or exponent are kept **exact** in a
//! dedicated [`Json::Int`] variant ([`i128`], covering all of `i64` and
//! `u64`), so 64-bit scenario seeds round-trip bit for bit instead of being
//! rounded through `f64`. Fractional and exponent forms, and integers beyond
//! `i128`, stay in [`Json::Num`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A JSON number with a fraction or exponent part (stored as `f64`), or
    /// an integer too large for [`Json::Int`].
    Num(f64),
    /// An integer literal, stored exactly. `i128` covers the full `i64` and
    /// `u64` ranges, so 64-bit seeds survive a round trip unchanged.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number (exact integers convert, with
    /// the usual `f64` rounding beyond 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer representable
    /// exactly.
    ///
    /// [`Json::Num`] values qualify only below 2⁵³ (where `f64` is exact);
    /// larger float-typed integers are rejected rather than silently rounded
    /// or saturated — exact 64-bit values arrive as [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        const F64_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53, itself exact
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            // lint: allow(R02, cast proven exact by the range/fract guard)
            Json::Num(x) if *x >= 0.0 && *x <= F64_EXACT && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(crate::artifact::usize_exact)
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * level),
                " ".repeat(width * (level + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(i128::from(crate::artifact::u64_exact(x)))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

fn write_number(out: &mut String, x: f64) {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 {
        // lint: allow(R02, cast proven exact by the fract/magnitude guard)
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            // Combine UTF-16 surrogate pairs (how external
                            // writers escape non-BMP characters).
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(
                                        "high surrogate without \\u low surrogate".to_string()
                                    );
                                }
                                let low = self.hex_escape(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "expected low surrogate, got \\u{low:04x}"
                                    ));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(char::from_u32(code).ok_or("invalid \\u escape code point")?);
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    // lint: allow(R03, rest is non-empty: peek returned Some)
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at `start`.
    fn hex_escape(&self, start: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // lint: allow(R03, the scanner loop above admits only ASCII bytes)
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Integer literals (no fraction, no exponent) are stored exactly so
        // values like 64-bit seeds survive parsing; only if the literal
        // overflows `i128` does it fall back to the rounding `f64` path.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.require(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.require(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            ("name", Json::from("hot\npath \"x\"")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(2.5)),
            ("flag", Json::from(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1u64), Json::from("two"), Json::Null]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            let parsed = Json::parse(&text).expect("parses");
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": -1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(doc.get("d").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(doc.get("d").and_then(Json::as_u64), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let parsed = Json::parse(r#""café \n \"q\"""#).unwrap();
        assert_eq!(parsed.as_str(), Some("café \n \"q\""));
        let rendered = Json::from("café \n \"q\"").render();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("café \n \"q\"")
        );
    }

    #[test]
    fn surrogate_pair_escapes() {
        // External writers (serde_json, python json) escape non-BMP
        // characters as UTF-16 surrogate pairs.
        let parsed = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
        // Raw (unescaped) non-BMP characters also pass straight through.
        let raw = Json::parse("\"\u{1F600}\"").unwrap();
        assert_eq!(raw.as_str(), Some("\u{1F600}"));
        // A lone high surrogate, a high surrogate followed by a non-escape,
        // and a bad low half are all rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
        assert!(Json::parse(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(5u64).render(), "5");
        assert_eq!(Json::from(2.5).render(), "2.5");
    }

    #[test]
    fn integers_above_2_pow_53_are_exact() {
        // The motivating bug: a 64-bit seed above 2^53 used to be parsed as
        // f64 and silently rounded to the nearest representable integer.
        for &seed in &[
            (1u64 << 53) + 1,
            u64::MAX,
            u64::MAX - 1,
            i64::MAX as u64 + 1,
        ] {
            let text = Json::from(seed).render();
            assert_eq!(text, seed.to_string());
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed, Json::Int(seed as i128));
            assert_eq!(parsed.as_u64(), Some(seed), "u64 round trip for {seed}");
        }
        // Negative integers parse exactly too, and refuse the u64 view.
        let neg = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(neg, Json::Int(i64::MIN as i128));
        assert_eq!(neg.as_u64(), None);
        assert_eq!(neg.as_f64(), Some(i64::MIN as f64));
    }

    #[test]
    fn float_typed_integers_above_2_pow_53_are_rejected_not_rounded() {
        // Exponent forms stay f64-typed; beyond 2^53 they are no longer
        // exact, so `as_u64` refuses them instead of saturating.
        let small = Json::parse("1e10").unwrap();
        assert_eq!(small.as_u64(), Some(10_000_000_000));
        // The boundary 2^53 itself is exactly representable and accepted;
        // the next float-typed integer above it is not.
        let boundary = Json::parse("9.007199254740992e15").unwrap();
        assert_eq!(boundary.as_u64(), Some(1u64 << 53));
        let above = Json::parse("9.007199254740994e15").unwrap();
        assert_eq!(above.as_u64(), None);
        let big = Json::parse("1e300").unwrap();
        assert_eq!(big.as_u64(), None);
        assert!(big.as_f64().is_some());
        // An integer literal too large even for i128 falls back to f64.
        let huge = Json::parse(&"9".repeat(60)).unwrap();
        assert!(matches!(huge, Json::Num(_)));
        assert_eq!(huge.as_u64(), None);
    }
}
