//! Atomic artefact publication and exact integer conversions.
//!
//! Every file the workspace publishes — result documents, snapshots,
//! ingestion reports, benchmark artefacts — goes through
//! [`write_bytes_atomic`], so a concurrent reader or a crash mid-write sees
//! either the previous complete file or the new one, never a torn mixture.
//! `lb lint` rule R04 enforces this at the source level: direct
//! `File::create`/`fs::write` calls outside this module are findings.
//!
//! [`u64_exact`] and [`usize_exact`] are the checked counterparts to the
//! truncating `as` casts that rule R02 rejects in serialization code: the
//! widening direction is proven lossless at compile time, the narrowing
//! direction reports failure instead of wrapping.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Atomically publishes `bytes` at `path`: write to a temp file in the same
/// directory, fsync, rename over the target, then fsync the directory. A
/// crash at any point leaves either the previous file or the new one under
/// `path`, never a torn mixture.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|name| name.to_str())
        .unwrap_or("artifact");
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        // lint: allow(R04, this is the staging write inside the atomic path)
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Persist the rename itself; best-effort where directories cannot be
        // opened (non-POSIX platforms).
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// The widening in `u64_exact` is only lossless where usize fits in u64 —
// true on every supported target, and proven here rather than assumed.
const _: () = assert!(std::mem::size_of::<usize>() <= std::mem::size_of::<u64>());

/// Losslessly widens a `usize` (a length, an index) to the `u64` the
/// serialization formats carry. The compile-time assertion above makes this
/// the audited home for a conversion that would otherwise be a bare `as`
/// cast at every call site.
#[inline]
pub fn u64_exact(n: usize) -> u64 {
    // lint: allow(R02, lossless by the const size assertion above)
    n as u64
}

/// Checked narrowing of a serialized `u64` back to `usize`; `None` when the
/// value does not fit the platform (the caller turns that into its located
/// error, never a wrapped index).
#[inline]
pub fn usize_exact(v: u64) -> Option<usize> {
    usize::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_publishes_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("lb-artifact-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        write_bytes_atomic(&target, b"{\"v\":1}\n").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":1}\n");
        // Overwrite: the new content fully replaces the old.
        write_bytes_atomic(&target, b"{\"v\":2}\n").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":2}\n");
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exact_conversions_round_trip_and_reject_overflow() {
        assert_eq!(u64_exact(0), 0);
        assert_eq!(u64_exact(usize::MAX), usize::MAX as u64);
        assert_eq!(usize_exact(42), Some(42));
        assert_eq!(usize_exact(u64_exact(usize::MAX)), Some(usize::MAX));
        if usize::BITS < 64 {
            assert_eq!(usize_exact(u64::MAX), None);
        }
    }
}
