//! # lb-analysis
//!
//! Statistics, Markdown table rendering and machine-readable experiment
//! records for the load-balancing experiment harness.
//!
//! ```
//! use lb_analysis::{Summary, Table, format_value};
//!
//! let s = Summary::of(&[1.0, 2.0, 3.0]);
//! let mut table = Table::new(vec!["metric".into(), "value".into()]);
//! table.add_row(vec!["mean".into(), format_value(s.mean)]);
//! assert!(table.render().contains("mean"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod json;
mod record;
mod stats;
mod table;

pub use artifact::{u64_exact, usize_exact, write_bytes_atomic};
pub use json::Json;
pub use record::{ExperimentRecord, Measurement};
pub use stats::{correlation, linear_fit, Summary};
pub use table::{format_value, Table};
