//! Markdown table rendering for experiment reports.
//!
//! The experiment binaries print tables in the same layout as the paper's
//! Tables 1 and 2 (algorithms as rows, graph classes as columns), so the
//! EXPERIMENTS.md paper-vs-measured comparison can be read side by side.

use std::fmt::Write as _;

/// A simple column-aligned Markdown table builder.
///
/// # Examples
///
/// ```
/// use lb_analysis::Table;
///
/// let mut t = Table::new(vec!["algorithm".into(), "torus".into(), "hypercube".into()]);
/// t.add_row(vec!["alg1".into(), "3.0".into(), "4.0".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("| algorithm"));
/// assert!(rendered.contains("| alg1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table requires at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Number of data rows added so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row(&mut self, mut row: Vec<String>) -> &mut Self {
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table as column-aligned Markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, " {:<width$} |", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        out.push('|');
        for width in &widths {
            let _ = write!(&mut out, "{:-<w$}|", "", w = width + 2);
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float for table cells: two decimals, trimming a trailing ".00".
pub fn format_value(value: f64) -> String {
    let s = format!("{value:.2}");
    match s.strip_suffix(".00") {
        Some(trimmed) => trimmed.to_string(),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.add_row(vec!["x".into(), "1".into()]);
        t.add_row(vec!["yyyy".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| a"));
        assert!(lines[1].starts_with("|--"));
        // All lines are equally wide thanks to padding.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["only one".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
        let r = t.render();
        assert!(!r.contains('3'), "extra cell must be dropped");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(2.46913), "2.47");
        assert_eq!(format_value(0.5), "0.50");
    }
}
