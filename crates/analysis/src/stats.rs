//! Small summary-statistics helpers used by the experiment harness.

/// Summary statistics of a sample of measurements (e.g. final discrepancies
/// over repeated seeded runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0.0 for fewer than two observations).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (average of the two middle values for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics of `values`.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Serialises the summary as a JSON object.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("std_dev", Json::from(self.std_dev)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
            ("median", Json::from(self.median)),
        ])
    }

    /// Parses a summary back from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(json: &crate::json::Json) -> Result<Self, String> {
        let num = |key: &str| {
            json.get(key)
                .and_then(crate::json::Json::as_f64)
                .ok_or_else(|| format!("summary field {key} missing or not a number"))
        };
        Ok(Summary {
            count: num("count")? as usize,
            mean: num("mean")?,
            std_dev: num("std_dev")?,
            min: num("min")?,
            max: num("max")?,
            median: num("median")?,
        })
    }
}

/// Simple ordinary-least-squares fit `y ≈ slope·x + intercept`, used to check
/// scaling shapes (e.g. "discrepancy grows linearly in d").
///
/// Returns `(slope, intercept)`; both are 0.0 when fewer than two points are
/// given or all `x` values coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    if points.len() < 2 {
        return (0.0, 0.0);
    }
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-300 {
        return (0.0, 0.0);
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    let intercept = (sum_y - slope * sum_x) / n;
    (slope, intercept)
}

/// Pearson correlation coefficient of a set of points; 0.0 when undefined.
pub fn correlation(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mean_x: f64 = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y: f64 = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for &(x, y) in points {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
        var_y += (y - mean_y) * (y - mean_y);
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // Sample std dev of this classic example is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
    }

    #[test]
    fn summary_edge_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);

        let single = Summary::of(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.median, 3.5);

        let odd = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median, 2.0);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let (slope, intercept) = linear_fit(&points);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert_eq!(linear_fit(&[]), (0.0, 0.0));
        assert_eq!(linear_fit(&[(1.0, 2.0)]), (0.0, 0.0));
        assert_eq!(linear_fit(&[(2.0, 1.0), (2.0, 3.0)]), (0.0, 0.0));
    }

    #[test]
    fn correlation_signs() {
        let up: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!((correlation(&up) - 1.0).abs() < 1e-9);
        let down: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, -(i as f64))).collect();
        assert!((correlation(&down) + 1.0).abs() < 1e-9);
        assert_eq!(correlation(&[(1.0, 1.0)]), 0.0);
        assert_eq!(correlation(&[(1.0, 1.0), (1.0, 2.0)]), 0.0);
    }
}
