//! Machine-readable experiment records.
//!
//! Every experiment binary writes one [`ExperimentRecord`] as JSON under
//! `target/experiments/`, so EXPERIMENTS.md can be regenerated and results
//! can be diffed across runs. Serialisation goes through the in-repo
//! [`Json`](crate::json::Json) module (the workspace builds offline, without
//! serde).

use crate::json::Json;
use crate::stats::Summary;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One measured cell of a result table: an algorithm on a graph class with a
/// concrete parameterisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Algorithm name (e.g. `"alg1(fos)"`).
    pub algorithm: String,
    /// Graph family label (e.g. `"hypercube(10)"`).
    pub graph: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
    /// Number of rounds the discrete process ran for.
    pub rounds: usize,
    /// Final max-min makespan discrepancy (summary over repeats/seeds).
    pub max_min: Summary,
    /// Final max-avg makespan discrepancy (summary over repeats/seeds).
    pub max_avg: Summary,
    /// Free-form extra key/value annotations (e.g. `w_max`, `lambda`).
    pub notes: Vec<(String, String)>,
}

impl Measurement {
    fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", Json::from(self.algorithm.clone())),
            ("graph", Json::from(self.graph.clone())),
            ("nodes", Json::from(self.nodes)),
            ("max_degree", Json::from(self.max_degree)),
            ("rounds", Json::from(self.rounds)),
            ("max_min", self.max_min.to_json()),
            ("max_avg", self.max_avg.to_json()),
            (
                "notes",
                Json::Arr(
                    self.notes
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::from(k.clone()), Json::from(v.clone())]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let field = |key: &str| json.get(key).ok_or_else(|| format!("missing field {key}"));
        let notes = match json.get("notes") {
            None => Vec::new(),
            Some(notes) => notes
                .as_array()
                .ok_or("notes must be an array")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().ok_or("note must be a [key, value] pair")?;
                    match pair {
                        [k, v] => Ok((
                            k.as_str().ok_or("note key must be a string")?.to_string(),
                            v.as_str().ok_or("note value must be a string")?.to_string(),
                        )),
                        _ => Err("note must have exactly two entries".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        Ok(Measurement {
            algorithm: field("algorithm")?
                .as_str()
                .ok_or("algorithm must be a string")?
                .to_string(),
            graph: field("graph")?
                .as_str()
                .ok_or("graph must be a string")?
                .to_string(),
            nodes: field("nodes")?
                .as_usize()
                .ok_or("nodes must be an integer")?,
            max_degree: field("max_degree")?
                .as_usize()
                .ok_or("max_degree must be an integer")?,
            rounds: field("rounds")?
                .as_usize()
                .ok_or("rounds must be an integer")?,
            max_min: Summary::from_json(field("max_min")?)?,
            max_avg: Summary::from_json(field("max_avg")?)?,
            notes,
        })
    }
}

/// A complete experiment: which paper artefact it reproduces plus all of its
/// measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id from DESIGN.md (e.g. `"E1"`).
    pub id: String,
    /// The paper artefact being reproduced (e.g. `"Table 1"`).
    pub paper_artifact: String,
    /// Human-readable description of the setup.
    pub description: String,
    /// All measurements taken.
    pub measurements: Vec<Measurement>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(
        id: impl Into<String>,
        paper_artifact: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            paper_artifact: paper_artifact.into(),
            description: description.into(),
            measurements: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, measurement: Measurement) -> &mut Self {
        self.measurements.push(measurement);
        self
    }

    /// Serialises the record as pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("id", Json::from(self.id.clone())),
            ("paper_artifact", Json::from(self.paper_artifact.clone())),
            ("description", Json::from(self.description.clone())),
            (
                "measurements",
                Json::Arr(self.measurements.iter().map(|m| m.to_json()).collect()),
            ),
        ])
        .render_pretty()
    }

    /// Parses a record from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or schema violation.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let json = Json::parse(text)?;
        let field = |key: &str| json.get(key).ok_or_else(|| format!("missing field {key}"));
        Ok(ExperimentRecord {
            id: field("id")?
                .as_str()
                .ok_or("id must be a string")?
                .to_string(),
            paper_artifact: field("paper_artifact")?
                .as_str()
                .ok_or("paper_artifact must be a string")?
                .to_string(),
            description: field("description")?
                .as_str()
                .ok_or("description must be a string")?
                .to_string(),
            measurements: field("measurements")?
                .as_array()
                .ok_or("measurements must be an array")?
                .iter()
                .map(Measurement::from_json)
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Writes the record to `dir/<id>.json`, creating the directory if
    /// needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the file.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        crate::artifact::write_bytes_atomic(&path, self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Reads a record back from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or an
    /// `InvalidData` error if it does not parse as a record.
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ExperimentRecord {
        let mut rec = ExperimentRecord::new("E-test", "Table 1", "unit-test record");
        rec.push(Measurement {
            algorithm: "alg1(fos)".into(),
            graph: "hypercube(4)".into(),
            nodes: 16,
            max_degree: 4,
            rounds: 100,
            max_min: Summary::of(&[3.0, 4.0]),
            max_avg: Summary::of(&[2.0, 2.0]),
            notes: vec![("w_max".into(), "1".into())],
        });
        rec
    }

    #[test]
    fn json_roundtrip() {
        let rec = sample_record();
        let json = rec.to_json();
        let parsed = ExperimentRecord::from_json_str(&json).unwrap();
        assert_eq!(parsed, rec);
        assert!(json.contains("alg1(fos)"));
    }

    #[test]
    fn write_and_read_back() {
        let rec = sample_record();
        let dir = std::env::temp_dir().join("lb_analysis_record_test");
        let path = rec.write_to_dir(&dir).unwrap();
        assert!(path.ends_with("E-test.json"));
        let read = ExperimentRecord::read_from(&path).unwrap();
        assert_eq!(read, rec);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn read_invalid_data_fails() {
        let dir = std::env::temp_dir().join("lb_analysis_record_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        let err = ExperimentRecord::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_notes_default_to_empty() {
        let text = r#"{"id": "x", "paper_artifact": "t", "description": "d",
            "measurements": [{"algorithm": "a", "graph": "g", "nodes": 4,
            "max_degree": 2, "rounds": 7,
            "max_min": {"count": 0, "mean": 0, "std_dev": 0, "min": 0, "max": 0, "median": 0},
            "max_avg": {"count": 0, "mean": 0, "std_dev": 0, "min": 0, "max": 0, "median": 0}}]}"#;
        let rec = ExperimentRecord::from_json_str(text).unwrap();
        assert!(rec.measurements[0].notes.is_empty());
    }
}
