//! Machine-readable experiment records.
//!
//! Every experiment binary writes one [`ExperimentRecord`] as JSON under
//! `target/experiments/`, so EXPERIMENTS.md can be regenerated and results
//! can be diffed across runs.

use crate::stats::Summary;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One measured cell of a result table: an algorithm on a graph class with a
/// concrete parameterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Algorithm name (e.g. `"alg1(fos)"`).
    pub algorithm: String,
    /// Graph family label (e.g. `"hypercube(10)"`).
    pub graph: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
    /// Number of rounds the discrete process ran for.
    pub rounds: usize,
    /// Final max-min makespan discrepancy (summary over repeats/seeds).
    pub max_min: Summary,
    /// Final max-avg makespan discrepancy (summary over repeats/seeds).
    pub max_avg: Summary,
    /// Free-form extra key/value annotations (e.g. `w_max`, `lambda`).
    #[serde(default)]
    pub notes: Vec<(String, String)>,
}

/// A complete experiment: which paper artefact it reproduces plus all of its
/// measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id from DESIGN.md (e.g. `"E1"`).
    pub id: String,
    /// The paper artefact being reproduced (e.g. `"Table 1"`).
    pub paper_artifact: String,
    /// Human-readable description of the setup.
    pub description: String,
    /// All measurements taken.
    pub measurements: Vec<Measurement>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(
        id: impl Into<String>,
        paper_artifact: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        ExperimentRecord {
            id: id.into(),
            paper_artifact: paper_artifact.into(),
            description: description.into(),
            measurements: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, measurement: Measurement) -> &mut Self {
        self.measurements.push(measurement);
        self
    }

    /// Serialises the record as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails, which cannot happen for this type.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record serialisation cannot fail")
    }

    /// Writes the record to `dir/<id>.json`, creating the directory if
    /// needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the file.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Reads a record back from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or an
    /// `InvalidData` error if it does not parse as a record.
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ExperimentRecord {
        let mut rec = ExperimentRecord::new("E-test", "Table 1", "unit-test record");
        rec.push(Measurement {
            algorithm: "alg1(fos)".into(),
            graph: "hypercube(4)".into(),
            nodes: 16,
            max_degree: 4,
            rounds: 100,
            max_min: Summary::of(&[3.0, 4.0]),
            max_avg: Summary::of(&[2.0, 2.0]),
            notes: vec![("w_max".into(), "1".into())],
        });
        rec
    }

    #[test]
    fn json_roundtrip() {
        let rec = sample_record();
        let json = rec.to_json();
        let parsed: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, rec);
        assert!(json.contains("alg1(fos)"));
    }

    #[test]
    fn write_and_read_back() {
        let rec = sample_record();
        let dir = std::env::temp_dir().join("lb_analysis_record_test");
        let path = rec.write_to_dir(&dir).unwrap();
        assert!(path.ends_with("E-test.json"));
        let read = ExperimentRecord::read_from(&path).unwrap();
        assert_eq!(read, rec);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn read_invalid_data_fails() {
        let dir = std::env::temp_dir().join("lb_analysis_record_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        let err = ExperimentRecord::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }
}
