//! # lb-workloads
//!
//! Workload generators for the load-balancing experiments: initial token
//! distributions ([`TokenDistribution`]), weighted workloads
//! ([`WeightModel`], [`weighted_load`]), node speed profiles ([`SpeedModel`]),
//! the sufficient-initial-load padding of Theorems 3(2)/8(2)
//! ([`pad_for_min_load`]), and dynamic-workload scenarios ([`scenario`]):
//! a JSON-serialisable [`Scenario`] spec describing per-round task arrivals,
//! completions and topology churn, with a deterministic event stream
//! ([`ScenarioEvents`]). The [`trace`] module records any run's event stream
//! to a line-delimited JSON file ([`TraceWriter`]) and reads it back
//! ([`Trace`]) for bit-identical replay. The [`source`] module parses the
//! same format incrementally from live byte streams: a growing trace file
//! ([`TraceSource`], tail-following) or any framed [`std::io::Read`]
//! ([`ReadSource`] — pipes, sockets, stdin), feeding recycled event buffers
//! to the async ingestion channel.
//!
//! ```
//! use lb_workloads::{TokenDistribution, SpeedModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let load = TokenDistribution::UniformRandom.generate(16, 1_000, &mut rng);
//! let speeds = SpeedModel::PowersOfTwo { classes: 2 }.generate(16, &mut rng);
//! assert_eq!(load.total_weight(), 1_000);
//! assert_eq!(speeds.len(), 16);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod distributions;
pub mod scenario;
pub mod source;
pub mod trace;
mod weights;

pub use distributions::{corner_source, pad_for_min_load, TokenDistribution};
pub use scenario::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ScenarioEvents, ServiceSpec, SpeedSpec, TopologySpec, MAX_FEDERATION, MAX_SHARDS,
};
pub use source::{Checkpoint, ReadSource, RoundSource, TraceSource};
pub use trace::{Trace, TraceRound, TraceWriter, TRACE_VERSION};
pub use weights::{weighted_load, SpeedModel, WeightModel};
