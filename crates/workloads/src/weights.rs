//! Task-weight and node-speed generators for the heterogeneous experiments.

use lb_core::{InitialLoad, Speeds, Task, TaskId, Weight};
use rand::Rng;

/// How task weights are drawn when building a weighted workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WeightModel {
    /// All tasks have unit weight (tokens).
    Unit,
    /// Weights drawn uniformly from `1..=w_max`.
    UniformRange {
        /// Maximum task weight.
        w_max: Weight,
    },
    /// Most tasks are light (weight 1); a fraction `heavy_percent` of tasks
    /// have weight `w_max`.
    Bimodal {
        /// Maximum task weight carried by the heavy tasks.
        w_max: Weight,
        /// Percentage (0..=100) of heavy tasks.
        heavy_percent: u32,
    },
}

impl WeightModel {
    /// The maximum weight this model can produce.
    pub fn w_max(&self) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformRange { w_max } | WeightModel::Bimodal { w_max, .. } => w_max,
        }
    }

    /// Draws one task weight.
    pub fn sample(&self, rng: &mut impl Rng) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformRange { w_max } => rng.gen_range(1..=w_max.max(1)),
            WeightModel::Bimodal {
                w_max,
                heavy_percent,
            } => {
                if rng.gen_range(0..100) < heavy_percent {
                    w_max.max(1)
                } else {
                    1
                }
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            WeightModel::Unit => "unit".to_string(),
            WeightModel::UniformRange { w_max } => format!("uniform[1..={w_max}]"),
            WeightModel::Bimodal {
                w_max,
                heavy_percent,
            } => format!("bimodal(w_max={w_max}, heavy={heavy_percent}%)"),
        }
    }
}

/// Builds a weighted workload: `tasks_per_node[i]` tasks on node `i`, each
/// with a weight drawn from `model`.
pub fn weighted_load(
    tasks_per_node: &[u64],
    model: WeightModel,
    rng: &mut impl Rng,
) -> InitialLoad {
    let mut next_id = 0u64;
    let tasks = tasks_per_node
        .iter()
        .map(|&count| {
            (0..count)
                .map(|_| {
                    let t = Task::new(TaskId(next_id), model.sample(rng));
                    next_id += 1;
                    t
                })
                .collect()
        })
        .collect();
    InitialLoad::from_tasks(tasks)
}

/// How node speeds are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpeedModel {
    /// Every node has speed 1.
    Uniform,
    /// Speeds drawn uniformly from `1..=s_max`.
    UniformRange {
        /// Maximum node speed.
        s_max: u64,
    },
    /// Speeds are powers of two `1, 2, 4, …` assigned round-robin, a
    /// deterministic strongly-heterogeneous profile.
    PowersOfTwo {
        /// Number of distinct speed classes (so the maximum speed is
        /// `2^(classes-1)`).
        classes: u32,
    },
}

impl SpeedModel {
    /// Materialises speeds for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if a `PowersOfTwo` model is asked for 0 classes.
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> Speeds {
        let values: Vec<u64> = match *self {
            SpeedModel::Uniform => vec![1; n],
            SpeedModel::UniformRange { s_max } => {
                (0..n).map(|_| rng.gen_range(1..=s_max.max(1))).collect()
            }
            SpeedModel::PowersOfTwo { classes } => {
                assert!(classes > 0, "need at least one speed class");
                (0..n).map(|i| 1u64 << (i as u32 % classes)).collect()
            }
        };
        // lint: allow(R03, every generator arm above yields positive speeds)
        Speeds::new(values).expect("generated speeds are always positive")
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            SpeedModel::Uniform => "uniform".to_string(),
            SpeedModel::UniformRange { s_max } => format!("uniform[1..={s_max}]"),
            SpeedModel::PowersOfTwo { classes } => format!("powers_of_two({classes})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_model_produces_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let load = weighted_load(&[3, 2], WeightModel::Unit, &mut rng);
        assert!(load.is_unit_weight());
        assert_eq!(load.task_count(), 5);
        assert_eq!(load.max_weight(), 1);
        assert_eq!(WeightModel::Unit.w_max(), 1);
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = WeightModel::UniformRange { w_max: 5 };
        let load = weighted_load(&[200], model, &mut rng);
        assert!(load.max_weight() <= 5);
        assert!(load.total_weight() >= 200);
        assert_eq!(model.w_max(), 5);
        for t in load.tasks_of(0) {
            assert!((1..=5).contains(&t.weight()));
        }
    }

    #[test]
    fn bimodal_has_only_two_weight_levels() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = WeightModel::Bimodal {
            w_max: 8,
            heavy_percent: 25,
        };
        let load = weighted_load(&[400], model, &mut rng);
        let mut saw_heavy = false;
        for t in load.tasks_of(0) {
            assert!(t.weight() == 1 || t.weight() == 8);
            saw_heavy |= t.weight() == 8;
        }
        assert!(saw_heavy, "25% heavy share should appear in 400 samples");
    }

    #[test]
    fn speed_models_generate_valid_speeds() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SpeedModel::Uniform.generate(5, &mut rng);
        assert!(s.is_uniform());

        let s = SpeedModel::UniformRange { s_max: 4 }.generate(100, &mut rng);
        assert!(s.max() <= 4);
        assert!(s.as_slice().iter().all(|&v| v >= 1));

        let s = SpeedModel::PowersOfTwo { classes: 3 }.generate(6, &mut rng);
        assert_eq!(s.as_slice(), &[1, 2, 4, 1, 2, 4]);
    }

    #[test]
    fn labels_are_informative() {
        assert!(WeightModel::UniformRange { w_max: 7 }.label().contains('7'));
        assert!(SpeedModel::PowersOfTwo { classes: 4 }.label().contains('4'));
        assert_eq!(SpeedModel::Uniform.label(), "uniform");
        assert!(WeightModel::Bimodal {
            w_max: 3,
            heavy_percent: 10
        }
        .label()
        .contains("10%"));
    }

    #[test]
    fn weight_samples_are_deterministic_per_seed() {
        let model = WeightModel::UniformRange { w_max: 9 };
        let a = weighted_load(&[50], model, &mut StdRng::seed_from_u64(7));
        let b = weighted_load(&[50], model, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
