//! Byte-stream ingestion sources: live front-ends that parse the
//! line-delimited trace format ([`crate::trace`]) **incrementally** — from a
//! growing file ([`TraceSource`]) or any framed byte stream such as a pipe,
//! socket or stdin ([`ReadSource`]) — into recycled [`RoundEvents`] buffers,
//! so a producer thread can feed an engine through the async ingestion
//! channel without allocating in steady state.
//!
//! # Layout
//!
//! * [`RoundSource`] — the producer-side contract: the header's embedded
//!   scenario plus a blocking `next_round` that fills a caller-owned batch.
//! * [`ReadSource`] — frames and parses records from any [`io::Read`]. End
//!   of input before the `end` record is a typed truncation error.
//! * [`TraceSource`] — follows a growing trace file: at end-of-file it polls
//!   for appended bytes, erroring out only after `idle_timeout` without
//!   growth (a stalled writer is indistinguishable from a truncated trace,
//!   so the timeout is the truncation guard). Resumable via
//!   [`Checkpoint`]s, which mark a consumed-line boundary.
//!
//! # The streaming record parser
//!
//! Whole-file parsing ([`crate::Trace::parse`]) goes through
//! [`lb_analysis::Json`] and allocates freely. The streaming parser here is
//! a separate single-pass scanner over one line at a time: it writes
//! arrivals and completions straight into the caller's [`RoundEvents`]
//! buffers and allocates only on the error path. It accepts the format the
//! writer emits plus insignificant whitespace and any field order — with
//! one extra requirement, natural for dispatch-while-streaming: every
//! record must **lead with its `"kind"` field**. Integer fields are exact:
//! fraction or exponent forms, negatives and out-of-range values are parse
//! errors, never silent roundings (`tests/trace_corpus.rs` pins the error
//! taxonomy).

use lb_analysis::u64_exact;
use lb_core::discrete::RoundEvents;
use lb_core::{Task, TaskId};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

use crate::scenario::Scenario;
use crate::trace::parse_header_line;

/// Default [`TraceSource`] idle timeout: how long the tail may see no file
/// growth before the trace is declared stalled/truncated.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(10);

/// Default [`TraceSource`] poll interval between end-of-file checks.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// A producer-side stream of round-tagged event batches, ready to be pumped
/// into the ingestion channel by a driver thread.
pub trait RoundSource: Send {
    /// The effective scenario embedded in the stream's header.
    fn scenario(&self) -> &Scenario;

    /// Fills `out` (cleared first) with the next round record's batch and
    /// returns its round tag, blocking until one is available. `Ok(None)`
    /// means the stream ended cleanly (the `end` record was seen and its
    /// totals matched).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed records, ordering violations,
    /// truncation (end of input without the `end` record) and I/O failures.
    fn next_round(&mut self, out: &mut RoundEvents) -> Result<Option<u64>, String>;
}

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

/// Accumulates raw bytes and yields complete newline-terminated lines.
/// Consumed bytes are compacted away on the next [`feed`](FrameDecoder::feed),
/// so the buffer stops growing once it fits the longest line plus one read
/// chunk — steady-state framing allocates nothing.
#[derive(Default)]
struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `start` belong to already-consumed lines.
    start: usize,
    /// Next index to search for a newline from (avoids rescanning).
    scan: usize,
}

impl FrameDecoder {
    fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.scan -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete line, without its terminator (a trailing `\r` is
    /// stripped), or `None` until more bytes arrive.
    fn take_line(&mut self) -> Option<&[u8]> {
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let mut end = self.scan + pos;
                let start = self.start;
                self.start = end + 1;
                self.scan = end + 1;
                if end > start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                Some(&self.buf[start..end])
            }
            None => {
                self.scan = self.buf.len();
                None
            }
        }
    }

    /// Whether unconsumed bytes (a partial line) are buffered.
    fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Number of buffered bytes not yet consumed as complete lines.
    fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }
}

// ---------------------------------------------------------------------------
// The single-pass record parser
// ---------------------------------------------------------------------------

/// One decoded stream record beyond the header.
enum StreamRecord {
    /// A `round` record; the batch was written into the caller's buffers.
    Round(u64),
    /// The sealing `end` record with its declared totals.
    End {
        /// Declared round-record total.
        rounds: u64,
        /// Declared event total.
        events: u64,
    },
    /// A `header` record (not parsed here — headers carry arbitrary JSON).
    Header,
}

/// A byte cursor over one record line.
struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(line: &'a str) -> Self {
        Scan {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn require(&mut self, token: u8) -> Result<(), String> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", token as char, self.pos))
        }
    }

    fn consume_if(&mut self, token: u8) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// A double-quoted string without escapes (the format never emits any in
    /// record positions the streaming parser inspects).
    fn string(&mut self) -> Result<&'a str, String> {
        self.require(b'"')?;
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => return Err("unsupported escape in string".into()),
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// A `"key":` pair opener.
    fn key(&mut self) -> Result<&'a str, String> {
        let name = self.string()?;
        self.require(b':')?;
        Ok(name)
    }

    /// A non-negative exact integer. Fraction/exponent forms, negatives and
    /// values beyond `u64` are errors — the streaming counterpart of the
    /// `Json::Int` exactness rule.
    fn integer(&mut self) -> Result<u64, String> {
        if self.peek() == Some(b'-') {
            return Err(format!(
                "expected a non-negative exact integer at byte {}",
                self.pos
            ));
        }
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(digit) = self.bytes.get(self.pos).filter(|b| b.is_ascii_digit()) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(digit - b'0')))
                .ok_or("integer out of range")?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected an integer at byte {}", self.pos));
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err("non-exact integer (fraction/exponent forms are rejected)".into());
        }
        Ok(value)
    }

    fn end(&mut self) -> Result<(), String> {
        if self.peek().is_some() {
            return Err(format!("unexpected trailing content at byte {}", self.pos));
        }
        Ok(())
    }
}

/// Parses `"completions":[[node,weight],…]` into `out.completions`.
fn parse_completions(scan: &mut Scan<'_>, out: &mut RoundEvents) -> Result<(), String> {
    scan.require(b'[')?;
    if scan.consume_if(b']') {
        return Ok(());
    }
    loop {
        scan.require(b'[')?;
        let node = usize::try_from(scan.integer()?).map_err(|_| "integer out of range")?;
        scan.require(b',')?;
        let weight = scan.integer()?;
        scan.require(b']')?;
        out.completions.push((node, weight));
        if !scan.consume_if(b',') {
            return scan.require(b']');
        }
    }
}

/// Parses `"arrivals":[[node,id,weight],…]` into `out.arrivals`.
fn parse_arrivals(scan: &mut Scan<'_>, out: &mut RoundEvents) -> Result<(), String> {
    scan.require(b'[')?;
    if scan.consume_if(b']') {
        return Ok(());
    }
    loop {
        scan.require(b'[')?;
        let node = usize::try_from(scan.integer()?).map_err(|_| "integer out of range")?;
        scan.require(b',')?;
        let id = scan.integer()?;
        scan.require(b',')?;
        let weight = scan.integer()?;
        scan.require(b']')?;
        if weight == 0 {
            return Err("arrival weight must be positive".into());
        }
        out.arrivals.push((node, Task::new(TaskId(id), weight)));
        if !scan.consume_if(b',') {
            return scan.require(b']');
        }
    }
}

/// Parses one stream record line, filling `out` (cleared first) for round
/// records. Allocation-free on the success path.
fn parse_stream_record(line: &str, out: &mut RoundEvents) -> Result<StreamRecord, String> {
    out.clear();
    let mut scan = Scan::new(line);
    scan.require(b'{')?;
    if scan.key()? != "kind" {
        return Err("record must lead with its \"kind\" field".into());
    }
    match scan.string()? {
        "header" => Ok(StreamRecord::Header),
        "round" => {
            let mut round = None;
            let mut have_completions = false;
            let mut have_arrivals = false;
            while scan.consume_if(b',') {
                match scan.key()? {
                    "round" if round.is_none() => round = Some(scan.integer()?),
                    "completions" if !have_completions => {
                        parse_completions(&mut scan, out)?;
                        have_completions = true;
                    }
                    "arrivals" if !have_arrivals => {
                        parse_arrivals(&mut scan, out)?;
                        have_arrivals = true;
                    }
                    key @ ("round" | "completions" | "arrivals") => {
                        return Err(format!("duplicate field {key:?}"))
                    }
                    other => return Err(format!("unknown round-record field {other:?}")),
                }
            }
            scan.require(b'}')?;
            scan.end()?;
            match (round, have_completions, have_arrivals) {
                (Some(round), true, true) => Ok(StreamRecord::Round(round)),
                (None, _, _) => Err("round record is missing field \"round\"".into()),
                (_, false, _) => Err("round record is missing field \"completions\"".into()),
                (_, _, false) => Err("round record is missing field \"arrivals\"".into()),
            }
        }
        "end" => {
            let mut rounds = None;
            let mut events = None;
            while scan.consume_if(b',') {
                match scan.key()? {
                    "rounds" if rounds.is_none() => rounds = Some(scan.integer()?),
                    "events" if events.is_none() => events = Some(scan.integer()?),
                    key @ ("rounds" | "events") => return Err(format!("duplicate field {key:?}")),
                    other => return Err(format!("unknown end-record field {other:?}")),
                }
            }
            scan.require(b'}')?;
            scan.end()?;
            match (rounds, events) {
                (Some(rounds), Some(events)) => Ok(StreamRecord::End { rounds, events }),
                (None, _) => Err("end record is missing field \"rounds\"".into()),
                (_, None) => Err("end record is missing field \"events\"".into()),
            }
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Shared stream validation
// ---------------------------------------------------------------------------

/// Per-stream validation state shared by both sources: round ordering,
/// bounds, running totals and the end-record seal.
struct StreamState {
    scenario_rounds: u64,
    last_round: Option<u64>,
    rounds_seen: u64,
    events_seen: u64,
    sealed: bool,
}

impl StreamState {
    fn new(scenario_rounds: usize) -> Self {
        StreamState {
            scenario_rounds: u64_exact(scenario_rounds),
            last_round: None,
            rounds_seen: 0,
            events_seen: 0,
            sealed: false,
        }
    }

    fn admit_round(&mut self, round: u64, events: u64) -> Result<(), String> {
        if let Some(last) = self.last_round {
            if round <= last {
                return Err(format!(
                    "round {round} after round {last} (must be strictly increasing)"
                ));
            }
        }
        if round >= self.scenario_rounds {
            return Err(format!(
                "round {round} is beyond the scenario ({} rounds)",
                self.scenario_rounds
            ));
        }
        self.last_round = Some(round);
        self.rounds_seen += 1;
        self.events_seen += events;
        Ok(())
    }

    fn admit_end(&mut self, rounds: u64, events: u64) -> Result<(), String> {
        if rounds != self.rounds_seen || events != self.events_seen {
            return Err(format!(
                "end record declares {rounds} round(s) / {events} event(s) but the \
                 stream carried {} / {}",
                self.rounds_seen, self.events_seen
            ));
        }
        self.sealed = true;
        Ok(())
    }
}

/// What one framed line contributed to the stream.
enum LineStep {
    /// A round record; `out` holds its batch.
    Round(u64),
    /// The sealing end record.
    End,
    /// A blank line.
    Skip,
}

/// Validates and dispatches one framed line for either source.
fn process_line(
    state: &mut StreamState,
    lineno: u64,
    line: &[u8],
    out: &mut RoundEvents,
) -> Result<LineStep, String> {
    if line.iter().all(u8::is_ascii_whitespace) {
        return Ok(LineStep::Skip);
    }
    if state.sealed {
        return Err(format!("line {lineno}: content after the end record"));
    }
    let text = std::str::from_utf8(line).map_err(|_| format!("line {lineno}: invalid UTF-8"))?;
    match parse_stream_record(text, out).map_err(|e| format!("line {lineno}: {e}"))? {
        StreamRecord::Header => Err(format!(
            "line {lineno}: unexpected header record mid-stream"
        )),
        StreamRecord::Round(round) => {
            let events = u64_exact(out.arrivals.len() + out.completions.len());
            state
                .admit_round(round, events)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            Ok(LineStep::Round(round))
        }
        StreamRecord::End { rounds, events } => {
            state
                .admit_end(rounds, events)
                .map_err(|e| format!("line {lineno}: {e}"))?;
            Ok(LineStep::End)
        }
    }
}

// ---------------------------------------------------------------------------
// ReadSource: framed records over any io::Read
// ---------------------------------------------------------------------------

/// A framed line-delimited trace reader over any [`io::Read`] — a pipe, a
/// socket, stdin, an in-memory cursor. Construction blocks until the header
/// line arrives; end of input before the `end` record is a truncation error.
pub struct ReadSource<R: Read> {
    reader: R,
    decoder: FrameDecoder,
    scenario: Scenario,
    state: StreamState,
    lineno: u64,
    /// Bytes handed to the decoder so far (consumed + buffered partial).
    read_pos: u64,
}

impl<R: Read + Send> ReadSource<R> {
    /// Wraps `reader`, reading and validating the header record (blocking
    /// until its line is complete).
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures, a malformed or missing header,
    /// and streams that end before the header line.
    pub fn new(mut reader: R) -> Result<Self, String> {
        let mut decoder = FrameDecoder::default();
        let mut buf = [0u8; 8192];
        let mut lineno = 0u64;
        let mut read_pos = 0u64;
        let header = loop {
            if let Some(line) = decoder.take_line() {
                lineno += 1;
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                let text = std::str::from_utf8(line)
                    .map_err(|_| format!("line {lineno}: invalid UTF-8"))?;
                break parse_header_line(text).map_err(|e| format!("line {lineno}: {e}"))?;
            }
            match reader.read(&mut buf) {
                Ok(0) => return Err("event stream ended before the header record".into()),
                Ok(n) => {
                    read_pos += u64_exact(n);
                    decoder.feed(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("reading event stream: {e}")),
            }
        };
        let state = StreamState::new(header.rounds);
        Ok(ReadSource {
            reader,
            decoder,
            scenario: header,
            state,
            lineno,
            read_pos,
        })
    }

    /// Wraps a stream whose header was **already consumed** — e.g. during a
    /// socket handshake that authenticated the header before attaching the
    /// connection — continuing validation from `checkpoint`. The carried
    /// `scenario` must be the one the consumed header embedded; round
    /// ordering resumes after `checkpoint.last_round` and the running totals
    /// resume from `checkpoint.rounds_seen`/`events_seen`, so a fresh
    /// post-handshake stream (totals zero, `last_round` pinned) validates
    /// its own `end` record while still rejecting replays of already-applied
    /// rounds.
    ///
    /// # Errors
    ///
    /// Returns a message when the carried scenario is invalid.
    pub fn resume(reader: R, scenario: Scenario, checkpoint: Checkpoint) -> Result<Self, String> {
        scenario.validate()?;
        let state = StreamState {
            scenario_rounds: u64_exact(scenario.rounds),
            last_round: checkpoint.last_round,
            rounds_seen: checkpoint.rounds_seen,
            events_seen: checkpoint.events_seen,
            sealed: false,
        };
        Ok(ReadSource {
            reader,
            decoder: FrameDecoder::default(),
            scenario,
            state,
            lineno: checkpoint.lineno,
            read_pos: checkpoint.offset,
        })
    }

    /// The current resume point: the boundary after the last consumed line
    /// (`offset` counts bytes consumed from the reader, relative to where
    /// this source started reading).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            offset: self.read_pos - u64_exact(self.decoder.pending_len()),
            lineno: self.lineno,
            last_round: self.state.last_round,
            rounds_seen: self.state.rounds_seen,
            events_seen: self.state.events_seen,
        }
    }
}

impl<R: Read + Send> RoundSource for ReadSource<R> {
    fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn next_round(&mut self, out: &mut RoundEvents) -> Result<Option<u64>, String> {
        let mut buf = [0u8; 8192];
        loop {
            while let Some(line) = self.decoder.take_line() {
                self.lineno += 1;
                match process_line(&mut self.state, self.lineno, line, out)? {
                    LineStep::Skip => continue,
                    LineStep::Round(round) => return Ok(Some(round)),
                    LineStep::End => return Ok(None),
                }
            }
            if self.state.sealed {
                return Ok(None);
            }
            match self.reader.read(&mut buf) {
                Ok(0) => {
                    return Err(if self.decoder.has_partial() {
                        format!(
                            "event stream ended mid-record at line {} (torn line; truncated?)",
                            self.lineno + 1
                        )
                    } else {
                        "event stream ended without the end record (truncated?)".to_string()
                    });
                }
                Ok(n) => {
                    self.read_pos += u64_exact(n);
                    self.decoder.feed(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("reading event stream: {e}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TraceSource: tailing a growing trace file
// ---------------------------------------------------------------------------

/// A resume point of a streaming source, taken at a consumed-line boundary
/// (see [`TraceSource::checkpoint`] and [`ReadSource::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Byte offset of the first unconsumed line.
    pub offset: u64,
    /// Lines consumed so far (the header is line 1).
    pub lineno: u64,
    /// Round tag of the last admitted round record.
    pub last_round: Option<u64>,
    /// Round records admitted so far.
    pub rounds_seen: u64,
    /// Events admitted so far.
    pub events_seen: u64,
}

/// Reads one chunk from the tailed file into the decoder, erroring if the
/// file shrank below the committed read position (in-place truncation).
fn read_file_chunk(
    file: &mut fs::File,
    path: &Path,
    read_pos: &mut u64,
    decoder: &mut FrameDecoder,
) -> Result<usize, String> {
    let len = file
        .metadata()
        .map_err(|e| format!("stat {}: {e}", path.display()))?
        .len();
    if len < *read_pos {
        return Err(format!(
            "trace {} shrank below the read position (truncated)",
            path.display()
        ));
    }
    let mut buf = [0u8; 8192];
    loop {
        match file.read(&mut buf) {
            Ok(n) => {
                *read_pos += u64_exact(n);
                if n > 0 {
                    decoder.feed(&buf[..n]);
                }
                return Ok(n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        }
    }
}

/// A file-tail trace reader: follows a trace file as it grows, parsing each
/// appended round record. End-of-file means *wait* (the writer may still be
/// running); only `idle_timeout` without growth — or a file that shrinks, or
/// ends in a torn line — is an error. The `end` record is the only clean
/// exit, so a truncated trace can never silently replay as a prefix.
pub struct TraceSource {
    file: fs::File,
    path: PathBuf,
    decoder: FrameDecoder,
    scenario: Scenario,
    state: StreamState,
    lineno: u64,
    /// File offset of the bytes handed to the decoder so far.
    read_pos: u64,
    idle_timeout: Duration,
    poll_interval: Duration,
}

impl TraceSource {
    /// Opens `path` with the default timeouts ([`DEFAULT_IDLE_TIMEOUT`],
    /// [`DEFAULT_POLL_INTERVAL`]), blocking until the header line arrives.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures, a malformed header, or a header
    /// that does not arrive within the idle timeout.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, String> {
        Self::open_with(path, DEFAULT_IDLE_TIMEOUT, DEFAULT_POLL_INTERVAL)
    }

    /// Opens `path` with explicit timeouts; see [`TraceSource::open`].
    ///
    /// # Errors
    ///
    /// As for [`TraceSource::open`].
    pub fn open_with(
        path: impl AsRef<Path>,
        idle_timeout: Duration,
        poll_interval: Duration,
    ) -> Result<Self, String> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            fs::File::open(&path).map_err(|e| format!("opening trace {}: {e}", path.display()))?;
        let mut decoder = FrameDecoder::default();
        let mut read_pos = 0u64;
        let mut waited = Duration::ZERO;
        let mut lineno = 0u64;
        let header = loop {
            if let Some(line) = decoder.take_line() {
                lineno += 1;
                if line.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                let text = std::str::from_utf8(line)
                    .map_err(|_| format!("{}: line {lineno}: invalid UTF-8", path.display()))?;
                break parse_header_line(text)
                    .map_err(|e| format!("{}: line {lineno}: {e}", path.display()))?;
            }
            if read_file_chunk(&mut file, &path, &mut read_pos, &mut decoder)? == 0 {
                if waited >= idle_timeout {
                    return Err(format!(
                        "trace {}: stalled before the header record (truncated?)",
                        path.display()
                    ));
                }
                thread::sleep(poll_interval);
                waited += poll_interval;
            } else {
                waited = Duration::ZERO;
            }
        };
        let state = StreamState::new(header.rounds);
        Ok(TraceSource {
            file,
            path,
            decoder,
            scenario: header,
            state,
            lineno,
            read_pos,
            idle_timeout,
            poll_interval,
        })
    }

    /// Reopens `path` at `checkpoint`, continuing a partially consumed tail
    /// (the header was consumed by the original source, so its `scenario`
    /// must be carried over).
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures or an invalid carried scenario.
    pub fn resume(
        path: impl AsRef<Path>,
        scenario: Scenario,
        checkpoint: Checkpoint,
        idle_timeout: Duration,
        poll_interval: Duration,
    ) -> Result<Self, String> {
        scenario.validate()?;
        let path = path.as_ref().to_path_buf();
        let mut file =
            fs::File::open(&path).map_err(|e| format!("opening trace {}: {e}", path.display()))?;
        file.seek(SeekFrom::Start(checkpoint.offset))
            .map_err(|e| format!("seeking {}: {e}", path.display()))?;
        let state = StreamState {
            scenario_rounds: u64_exact(scenario.rounds),
            last_round: checkpoint.last_round,
            rounds_seen: checkpoint.rounds_seen,
            events_seen: checkpoint.events_seen,
            sealed: false,
        };
        Ok(TraceSource {
            file,
            path,
            decoder: FrameDecoder::default(),
            scenario,
            state,
            lineno: checkpoint.lineno,
            read_pos: checkpoint.offset,
            idle_timeout,
            poll_interval,
        })
    }

    /// The current resume point: the boundary after the last consumed line.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            offset: self.read_pos - u64_exact(self.decoder.pending_len()),
            lineno: self.lineno,
            last_round: self.state.last_round,
            rounds_seen: self.state.rounds_seen,
            events_seen: self.state.events_seen,
        }
    }
}

impl RoundSource for TraceSource {
    fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn next_round(&mut self, out: &mut RoundEvents) -> Result<Option<u64>, String> {
        let mut waited = Duration::ZERO;
        loop {
            while let Some(line) = self.decoder.take_line() {
                self.lineno += 1;
                match process_line(&mut self.state, self.lineno, line, out)
                    .map_err(|e| format!("{}: {e}", self.path.display()))?
                {
                    LineStep::Skip => continue,
                    LineStep::Round(round) => return Ok(Some(round)),
                    LineStep::End => return Ok(None),
                }
            }
            if self.state.sealed {
                return Ok(None);
            }
            if read_file_chunk(
                &mut self.file,
                &self.path,
                &mut self.read_pos,
                &mut self.decoder,
            )? == 0
            {
                if waited >= self.idle_timeout {
                    return Err(if self.decoder.has_partial() {
                        format!(
                            "trace {}: stalled mid-record without an end record \
                             (torn tail; truncated?)",
                            self.path.display()
                        )
                    } else {
                        format!(
                            "trace {}: stalled without an end record (truncated?)",
                            self.path.display()
                        )
                    });
                }
                thread::sleep(self.poll_interval);
                waited += self.poll_interval;
            } else {
                waited = Duration::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::TokenDistribution;
    use crate::scenario::{
        AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, ServiceSpec, SpeedSpec,
        TopologySpec,
    };
    use crate::trace::TraceWriter;
    use std::io::Write;

    fn scenario() -> Scenario {
        Scenario {
            name: "source_test".into(),
            seed: 9,
            rounds: 40,
            sample_every: 10,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 16,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 4,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 2,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
            federation: 1,
        }
    }

    /// A `Write` sink the test can read back (mirrors the trace.rs helper).
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn into_string(self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn batch(base_id: u64) -> RoundEvents {
        let mut events = RoundEvents::default();
        events.completions.push((0, 3));
        events.completions.push((5, 1));
        events.arrivals.push((2, Task::new(TaskId(base_id), 2)));
        events.arrivals.push((7, Task::new(TaskId(base_id + 1), 1)));
        events
    }

    fn sample_trace() -> String {
        let buf = SharedBuf::default();
        let mut writer = TraceWriter::new(buf.clone(), &scenario()).unwrap();
        writer.record_round(0, &batch(100)).unwrap();
        writer.record_round(7, &batch(102)).unwrap();
        writer.record_round(12, &batch(104)).unwrap();
        writer.finish().unwrap();
        buf.into_string()
    }

    /// A reader that trickles its bytes a few at a time, exercising the
    /// framing across arbitrary chunk boundaries.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        step: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.step.min(self.bytes.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_source_round_trips_the_writer_format() {
        let text = sample_trace();
        for step in [1, 3, 8192] {
            let mut source = ReadSource::new(Trickle {
                bytes: text.clone().into_bytes(),
                pos: 0,
                step,
            })
            .expect("header parses");
            assert_eq!(source.scenario(), &scenario());
            let mut out = RoundEvents::default();
            let mut rounds = Vec::new();
            while let Some(round) = source.next_round(&mut out).expect("rounds parse") {
                rounds.push(round);
                let expect = batch(100 + rounds.len() as u64 * 2 - 2);
                assert_eq!(out.completions, expect.completions, "step {step}");
                assert_eq!(out.arrivals, expect.arrivals, "step {step}");
            }
            assert_eq!(rounds, vec![0, 7, 12], "step {step}");
            // Post-seal calls stay at the clean end.
            assert_eq!(source.next_round(&mut out).unwrap(), None);
        }
    }

    #[test]
    fn read_source_rejects_truncation() {
        let text = sample_trace();
        // Without the end record.
        let cut: String = text.lines().take(3).collect::<Vec<_>>().join("\n") + "\n";
        let mut source = ReadSource::new(io::Cursor::new(cut.into_bytes())).unwrap();
        let mut out = RoundEvents::default();
        let err = loop {
            match source.next_round(&mut out) {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncated stream ended cleanly"),
                Err(e) => break e,
            }
        };
        assert!(err.contains("without the end record"), "{err}");

        // Torn mid-line.
        let torn = &text[..text.len() - 20];
        let mut source = ReadSource::new(io::Cursor::new(torn.as_bytes().to_vec())).unwrap();
        let err = loop {
            match source.next_round(&mut out) {
                Ok(Some(_)) => {}
                Ok(None) => panic!("torn stream ended cleanly"),
                Err(e) => break e,
            }
        };
        assert!(err.contains("torn line"), "{err}");
    }

    #[test]
    fn read_source_resumes_a_headerless_stream() {
        let text = sample_trace();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        let first_round = lines.next().unwrap();

        // A first connection delivers the header and one round, then dies.
        let opening = format!("{header}\n{first_round}\n");
        let mut source = ReadSource::new(io::Cursor::new(opening.into_bytes())).unwrap();
        let mut out = RoundEvents::default();
        assert_eq!(source.next_round(&mut out).unwrap(), Some(0));
        let err = source.next_round(&mut out).unwrap_err();
        assert!(err.contains("without the end record"), "{err}");
        let parked = source.checkpoint();
        assert_eq!(parked.last_round, Some(0));
        let scenario = source.scenario().clone();
        drop(source);

        // The continuation stream carries only post-resume rounds plus its
        // own end record; counters restart at zero so those totals validate,
        // while `last_round` still rejects replays.
        let buf = SharedBuf::default();
        let mut writer = TraceWriter::new(buf.clone(), &scenario).unwrap();
        writer.record_round(7, &batch(102)).unwrap();
        writer.record_round(12, &batch(104)).unwrap();
        writer.finish().unwrap();
        let continuation: String = buf
            .into_string()
            .lines()
            .skip(1) // the handshake consumed the header
            .map(|l| format!("{l}\n"))
            .collect();
        let resume_at = Checkpoint {
            last_round: parked.last_round,
            rounds_seen: 0,
            events_seen: 0,
            offset: 0,
            lineno: 0,
        };
        let mut resumed = ReadSource::resume(
            io::Cursor::new(continuation.clone().into_bytes()),
            scenario.clone(),
            resume_at,
        )
        .unwrap();
        assert_eq!(resumed.next_round(&mut out).unwrap(), Some(7));
        assert_eq!(resumed.next_round(&mut out).unwrap(), Some(12));
        assert_eq!(resumed.next_round(&mut out).unwrap(), None, "sealed");

        // Replaying an already-applied round is still an ordering error.
        let mut replayer = ReadSource::resume(
            io::Cursor::new(continuation.into_bytes()),
            scenario,
            Checkpoint {
                last_round: Some(7),
                rounds_seen: 0,
                events_seen: 0,
                offset: 0,
                lineno: 0,
            },
        )
        .unwrap();
        let err = replayer.next_round(&mut out).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn trace_source_follows_a_growing_file() {
        let text = sample_trace();
        let path = std::env::temp_dir().join("lb_source_tail_test.trace.jsonl");
        std::fs::write(&path, "").unwrap();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let writer_path = path.clone();
        let writer = thread::spawn(move || {
            let mut file = fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            for line in lines {
                writeln!(file, "{line}").unwrap();
                file.flush().unwrap();
                thread::sleep(Duration::from_millis(2));
            }
        });
        let mut source =
            TraceSource::open_with(&path, Duration::from_secs(20), Duration::from_millis(1))
                .expect("header arrives");
        assert_eq!(source.scenario(), &scenario());
        let mut out = RoundEvents::default();
        let mut rounds = Vec::new();
        while let Some(round) = source.next_round(&mut out).expect("tail parses") {
            rounds.push(round);
        }
        assert_eq!(rounds, vec![0, 7, 12]);
        writer.join().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_source_checkpoints_resume() {
        let text = sample_trace();
        let path = std::env::temp_dir().join("lb_source_resume_test.trace.jsonl");
        std::fs::write(&path, &text).unwrap();
        let mut source =
            TraceSource::open_with(&path, Duration::from_millis(100), Duration::from_millis(1))
                .unwrap();
        let mut out = RoundEvents::default();
        assert_eq!(source.next_round(&mut out).unwrap(), Some(0));
        assert_eq!(source.next_round(&mut out).unwrap(), Some(7));
        let checkpoint = source.checkpoint();
        let embedded = source.scenario().clone();
        drop(source);

        let mut resumed = TraceSource::resume(
            &path,
            embedded,
            checkpoint,
            Duration::from_millis(100),
            Duration::from_millis(1),
        )
        .unwrap();
        assert_eq!(resumed.next_round(&mut out).unwrap(), Some(12));
        let expect = batch(104);
        assert_eq!(out.arrivals, expect.arrivals);
        assert_eq!(resumed.next_round(&mut out).unwrap(), None, "sealed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_source_times_out_on_a_stalled_tail() {
        let text = sample_trace();
        let path = std::env::temp_dir().join("lb_source_stall_test.trace.jsonl");
        // Drop the end record AND tear the last line.
        let torn = &text[..text.len() - 25];
        std::fs::write(&path, torn).unwrap();
        let mut source =
            TraceSource::open_with(&path, Duration::from_millis(30), Duration::from_millis(5))
                .unwrap();
        let mut out = RoundEvents::default();
        let err = loop {
            match source.next_round(&mut out) {
                Ok(Some(_)) => {}
                Ok(None) => panic!("stalled tail ended cleanly"),
                Err(e) => break e,
            }
        };
        assert!(err.contains("truncated?"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_parser_matches_whole_file_parser() {
        // The streaming parser and Trace::parse must agree on every record
        // of a canonical trace.
        let text = sample_trace();
        let trace = crate::Trace::parse(&text).unwrap();
        let mut source = ReadSource::new(io::Cursor::new(text.into_bytes())).unwrap();
        let mut out = RoundEvents::default();
        let mut expect_out = RoundEvents::default();
        for record in &trace.rounds {
            assert_eq!(source.next_round(&mut out).unwrap(), Some(record.round));
            record.fill(&mut expect_out);
            assert_eq!(out.completions, expect_out.completions);
            assert_eq!(out.arrivals, expect_out.arrivals);
        }
        assert_eq!(source.next_round(&mut out).unwrap(), None);
    }
}
