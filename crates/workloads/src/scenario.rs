//! Dynamic-workload scenarios: a declarative spec for "what happens each
//! round" — task arrivals, task completions and topology churn — plus a
//! deterministic event stream that materialises the spec.
//!
//! A [`Scenario`] serialises to and from JSON through [`lb_analysis::Json`]
//! (the workspace builds offline, without serde), so scenario files can be
//! committed, diffed and replayed: the same spec and seed produce
//! bit-identical event streams and therefore bit-identical trajectories.
//! The JSON schema is documented in ROADMAP.md (`## Scenario spec`), with a
//! runnable example at `examples/scenario_poisson.json`.
//!
//! The spec layer is engine-agnostic: it produces [`RoundEvents`] batches
//! and leaves graph construction and engine choice to the driver
//! (`lb-bench`'s `lb run`).

use lb_analysis::Json;
use lb_core::discrete::RoundEvents;
use lb_core::{Speeds, Task, TaskId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::TokenDistribution;

/// Which discrete algorithm a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// Algorithm 1 — deterministic flow imitation.
    Alg1,
    /// Algorithm 2 — randomized flow imitation (unit tasks only).
    Alg2,
}

impl AlgorithmSpec {
    /// The JSON string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlgorithmSpec::Alg1 => "alg1",
            AlgorithmSpec::Alg2 => "alg2",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "alg1" => Ok(AlgorithmSpec::Alg1),
            "alg2" => Ok(AlgorithmSpec::Alg2),
            other => Err(format!("unknown algorithm {other:?} (want alg1|alg2)")),
        }
    }
}

/// Which continuous twin the discretizer imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// First-order diffusion.
    Fos,
    /// Second-order diffusion with the optimal β.
    Sos,
}

impl ModelSpec {
    /// The JSON string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ModelSpec::Fos => "fos",
            ModelSpec::Sos => "sos",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fos" => Ok(ModelSpec::Fos),
            "sos" => Ok(ModelSpec::Sos),
            other => Err(format!("unknown model {other:?} (want fos|sos)")),
        }
    }
}

/// The network a scenario runs on. `family` names a graph class of the
/// experiment harness (`arbitrary`, `expander`, `hypercube`, `torus`,
/// `ring_of_cliques`, `cycle`); the driver resolves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Graph family name (resolved by the driver's graph-class registry).
    pub family: String,
    /// Target node count (rounded to whatever the family supports).
    pub target_n: usize,
}

/// How node speeds are assigned (mirrors [`crate::SpeedModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedSpec {
    /// Every node has speed 1.
    Uniform,
    /// Speeds drawn uniformly from `1..=s_max`.
    UniformRange {
        /// Maximum node speed.
        s_max: u64,
    },
    /// Powers of two assigned round-robin over `classes` classes.
    PowersOfTwo {
        /// Number of speed classes.
        classes: u32,
    },
}

impl SpeedSpec {
    /// The equivalent workload-generator model.
    pub fn to_model(self) -> crate::SpeedModel {
        match self {
            SpeedSpec::Uniform => crate::SpeedModel::Uniform,
            SpeedSpec::UniformRange { s_max } => crate::SpeedModel::UniformRange { s_max },
            SpeedSpec::PowersOfTwo { classes } => crate::SpeedModel::PowersOfTwo { classes },
        }
    }
}

/// Initial load: a token distribution scaled to `tokens_per_node · n` total
/// tokens, plus `pad` extra tokens per node and speed unit (the
/// sufficient-initial-load padding of Theorems 3(2)/8(2); `"pad": "degree"`
/// resolves to `d · w_max` at build time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitialSpec {
    /// Where the initial tokens go.
    pub distribution: TokenDistribution,
    /// Average tokens per node (total = `tokens_per_node · n`).
    pub tokens_per_node: u64,
    /// Per-node, per-speed-unit padding.
    pub pad: PadSpec,
}

/// The padding rule of an [`InitialSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadSpec {
    /// A fixed number of tokens per speed unit.
    Tokens(u64),
    /// `d · w_max` tokens per speed unit — the Theorem 3(2) sufficient-load
    /// condition, resolved against the built graph.
    Degree,
}

/// Per-round task arrival model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// No arrivals (the paper's static-drain setting).
    None,
    /// Poisson(`rate_per_node · n`) tasks per round, each landing on a
    /// uniformly random node.
    Poisson {
        /// Expected arrivals per node per round.
        rate_per_node: f64,
        /// Task weights drawn uniformly from `1..=max_weight`.
        max_weight: Weight,
    },
    /// Quiet rounds punctuated by bursts: every `period` rounds, `burst`
    /// tasks all land on one uniformly chosen node.
    Bursty {
        /// Rounds between bursts.
        period: usize,
        /// Tasks per burst.
        burst: u64,
        /// Task weights drawn uniformly from `1..=max_weight`.
        max_weight: Weight,
    },
    /// Adversarial sustained hot-spot: Poisson(`rate`) tasks per round, all
    /// landing on one fixed node.
    HotSpot {
        /// Expected arrivals per round.
        rate: f64,
        /// The hot node (taken modulo the current node count after churn).
        node: usize,
        /// Task weights drawn uniformly from `1..=max_weight`.
        max_weight: Weight,
    },
}

impl ArrivalSpec {
    /// The heaviest task this model can produce.
    pub fn max_weight(&self) -> Weight {
        match *self {
            ArrivalSpec::None => 1,
            ArrivalSpec::Poisson { max_weight, .. }
            | ArrivalSpec::Bursty { max_weight, .. }
            | ArrivalSpec::HotSpot { max_weight, .. } => max_weight,
        }
    }
}

/// Per-round task completion (service) model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceSpec {
    /// No completions: arrived work stays in the system.
    None,
    /// Every node completes up to `weight_per_speed · s_i` task weight per
    /// round (whole tasks, in pick order).
    Uniform {
        /// Completion budget per speed unit per round.
        weight_per_speed: u64,
    },
}

/// A topology-churn event, applied before the round it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The round before which the event fires.
    pub round: usize,
    /// What happens.
    pub kind: ChurnKind,
}

/// The kinds of topology churn a scenario can schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnKind {
    /// Rebuild the same family and size with a new generator seed (edge
    /// churn; deterministic families rebuild identically). The driver
    /// computes the old-to-new edge delta and patches the topology in place.
    Rewire {
        /// Generator seed for the rebuilt graph.
        seed: u64,
    },
    /// Rebuild the family at a new size (node churn: nodes join or leave;
    /// orphaned tasks are re-queued on node 0). Always a full rebuild.
    Resize {
        /// New target node count.
        target_n: usize,
        /// Generator seed for the rebuilt graph.
        seed: u64,
    },
    /// Explicit edge churn: patch the current topology by removing and
    /// adding the listed `(u, v)` pairs (`O(Δ)` work, no family rebuild).
    /// Pairs are canonicalised to `u < v`; endpoints are validated against
    /// the current node count when the event is applied.
    Delta {
        /// Edges to insert.
        add: Vec<(usize, usize)>,
        /// Edges to remove.
        remove: Vec<(usize, usize)>,
    },
}

/// Upper bound on a scenario's `shards`: every shard beyond the first is a
/// persistent OS thread, so an absurd count must be a validation error, not
/// a `thread::spawn` resource-exhaustion abort mid-run.
pub const MAX_SHARDS: usize = 256;

/// Upper bound on a scenario's `federation`: every partition is a full OS
/// process, so an absurd count must be a validation error, not a fork bomb.
pub const MAX_FEDERATION: usize = 64;

/// A complete dynamic-workload scenario.
///
/// See the module docs for the JSON schema; [`Scenario::parse`] /
/// [`Scenario::render_pretty`] round-trip losslessly.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in reports and output file names).
    pub name: String,
    /// Master seed: event stream, speeds, initial distribution and graph
    /// construction all derive deterministic sub-seeds from it.
    pub seed: u64,
    /// Number of balancing rounds.
    pub rounds: usize,
    /// Metric sampling period (round 0 and the final round always sample).
    pub sample_every: usize,
    /// Which discrete algorithm runs.
    pub algorithm: AlgorithmSpec,
    /// Which continuous twin it imitates.
    pub model: ModelSpec,
    /// The network.
    pub topology: TopologySpec,
    /// Node speeds.
    pub speeds: SpeedSpec,
    /// Initial load.
    pub initial: InitialSpec,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Completion process.
    pub completions: ServiceSpec,
    /// Scheduled topology churn, sorted by round.
    pub churn: Vec<ChurnEvent>,
    /// Intra-instance parallelism: how many node-range shards the engine
    /// splits each round across (1 = sequential). Trajectories are
    /// bit-identical for every shard count; this only trades wall-clock time.
    pub shards: usize,
    /// Inter-process parallelism: how many federated partitions (worker
    /// processes) `lb federate` splits the simulation across (1 = a single
    /// process). Like `shards`, this never changes the result — `lb run`
    /// ignores it and a federated run is bit-identical to a sequential one —
    /// so it is exempt from trace-header authentication.
    pub federation: usize,
}

impl Scenario {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if self.sample_every == 0 {
            return Err("sample_every must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.shards > MAX_SHARDS {
            return Err(format!(
                "shards is {}, above the maximum of {MAX_SHARDS} (each shard beyond the \
                 first is an OS thread)",
                self.shards
            ));
        }
        if self.federation == 0 {
            return Err("federation must be at least 1".into());
        }
        if self.federation > MAX_FEDERATION {
            return Err(format!(
                "federation is {}, above the maximum of {MAX_FEDERATION} (each partition \
                 is an OS process)",
                self.federation
            ));
        }
        if self.topology.target_n < 2 {
            return Err("topology.target_n must be at least 2".into());
        }
        if self.topology.family.is_empty() {
            return Err("topology.family must not be empty".into());
        }
        match self.arrivals {
            ArrivalSpec::Poisson { rate_per_node, .. }
                if rate_per_node.is_nan() || rate_per_node < 0.0 =>
            {
                return Err("arrivals.rate_per_node must be a non-negative number".into());
            }
            ArrivalSpec::HotSpot { rate, .. } if rate.is_nan() || rate < 0.0 => {
                return Err("arrivals.rate must be a non-negative number".into());
            }
            ArrivalSpec::Bursty { period: 0, .. } => {
                return Err("arrivals.period must be positive".into());
            }
            _ => {}
        }
        if self.arrivals.max_weight() == 0 {
            return Err("arrivals.max_weight must be at least 1".into());
        }
        if self.algorithm == AlgorithmSpec::Alg2 && self.arrivals.max_weight() != 1 {
            return Err("alg2 requires unit-weight arrivals (max_weight = 1)".into());
        }
        let mut last = 0usize;
        for event in &self.churn {
            if event.round < last {
                return Err("churn events must be sorted by round".into());
            }
            if event.round >= self.rounds {
                return Err(format!(
                    "churn event at round {} is beyond the run ({} rounds)",
                    event.round, self.rounds
                ));
            }
            match &event.kind {
                ChurnKind::Resize { target_n, .. } => {
                    if *target_n < 2 {
                        return Err("churn resize target_n must be at least 2".into());
                    }
                }
                ChurnKind::Delta { add, remove } => {
                    // Endpoint range depends on the node count at apply time
                    // (earlier resizes may change it), so only shape errors
                    // are catchable here; range errors surface when the
                    // delta is applied.
                    for &(u, v) in add.iter().chain(remove) {
                        if u == v {
                            return Err(format!("churn delta edge ({u}, {v}) is a self-loop"));
                        }
                    }
                }
                ChurnKind::Rewire { .. } => {}
            }
            last = event.round;
        }
        Ok(())
    }

    /// Parses a scenario from JSON text and validates it.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or schema error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let scenario = Self::from_json(&Json::parse(text)?)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Renders the scenario as pretty-printed JSON.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Builds the JSON representation.
    pub fn to_json(&self) -> Json {
        let arrivals = match self.arrivals {
            ArrivalSpec::None => Json::obj([("model", Json::from("none"))]),
            ArrivalSpec::Poisson {
                rate_per_node,
                max_weight,
            } => Json::obj([
                ("model", Json::from("poisson")),
                ("rate_per_node", Json::from(rate_per_node)),
                ("max_weight", Json::from(max_weight)),
            ]),
            ArrivalSpec::Bursty {
                period,
                burst,
                max_weight,
            } => Json::obj([
                ("model", Json::from("bursty")),
                ("period", Json::from(period)),
                ("burst", Json::from(burst)),
                ("max_weight", Json::from(max_weight)),
            ]),
            ArrivalSpec::HotSpot {
                rate,
                node,
                max_weight,
            } => Json::obj([
                ("model", Json::from("hotspot")),
                ("rate", Json::from(rate)),
                ("node", Json::from(node)),
                ("max_weight", Json::from(max_weight)),
            ]),
        };
        let completions = match self.completions {
            ServiceSpec::None => Json::obj([("model", Json::from("none"))]),
            ServiceSpec::Uniform { weight_per_speed } => Json::obj([
                ("model", Json::from("uniform")),
                ("weight_per_speed", Json::from(weight_per_speed)),
            ]),
        };
        let speeds = match self.speeds {
            SpeedSpec::Uniform => Json::obj([("model", Json::from("uniform"))]),
            SpeedSpec::UniformRange { s_max } => Json::obj([
                ("model", Json::from("uniform_range")),
                ("s_max", Json::from(s_max)),
            ]),
            SpeedSpec::PowersOfTwo { classes } => Json::obj([
                ("model", Json::from("powers_of_two")),
                ("classes", Json::from(u64::from(classes))),
            ]),
        };
        let distribution = match self.initial.distribution {
            TokenDistribution::SingleSource { source } => Json::obj([
                ("model", Json::from("single_source")),
                ("source", Json::from(source)),
            ]),
            TokenDistribution::UniformRandom => {
                Json::obj([("model", Json::from("uniform_random"))])
            }
            TokenDistribution::AlmostBalanced => {
                Json::obj([("model", Json::from("almost_balanced"))])
            }
            TokenDistribution::Geometric { ratio_percent } => Json::obj([
                ("model", Json::from("geometric")),
                ("ratio_percent", Json::from(u64::from(ratio_percent))),
            ]),
        };
        let pad = match self.initial.pad {
            PadSpec::Tokens(t) => Json::from(t),
            PadSpec::Degree => Json::from("degree"),
        };
        let edge_list = |pairs: &[(usize, usize)]| {
            Json::Arr(
                pairs
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::from(u), Json::from(v)]))
                    .collect(),
            )
        };
        let churn = self
            .churn
            .iter()
            .map(|event| match &event.kind {
                ChurnKind::Rewire { seed } => Json::obj([
                    ("round", Json::from(event.round)),
                    ("kind", Json::from("rewire")),
                    ("seed", Json::from(*seed)),
                ]),
                ChurnKind::Resize { target_n, seed } => Json::obj([
                    ("round", Json::from(event.round)),
                    ("kind", Json::from("resize")),
                    ("target_n", Json::from(*target_n)),
                    ("seed", Json::from(*seed)),
                ]),
                ChurnKind::Delta { add, remove } => Json::obj([
                    ("round", Json::from(event.round)),
                    ("kind", Json::from("delta")),
                    ("add", edge_list(add)),
                    ("remove", edge_list(remove)),
                ]),
            })
            .collect();
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("seed", Json::from(self.seed)),
            ("rounds", Json::from(self.rounds)),
            ("sample_every", Json::from(self.sample_every)),
            ("shards", Json::from(self.shards)),
            ("federation", Json::from(self.federation)),
            ("algorithm", Json::from(self.algorithm.as_str())),
            ("model", Json::from(self.model.as_str())),
            (
                "topology",
                Json::obj([
                    ("family", Json::from(self.topology.family.clone())),
                    ("target_n", Json::from(self.topology.target_n)),
                ]),
            ),
            ("speeds", speeds),
            (
                "initial",
                Json::obj([
                    ("distribution", distribution),
                    ("tokens_per_node", Json::from(self.initial.tokens_per_node)),
                    ("pad", pad),
                ]),
            ),
            ("arrivals", arrivals),
            ("completions", completions),
            ("churn", Json::Arr(churn)),
        ])
    }

    /// Builds a scenario from its JSON representation. Optional sections
    /// (`speeds`, `arrivals`, `completions`, `churn`, `shards`,
    /// `federation`) default to uniform speeds, no arrivals, no completions,
    /// no churn, one shard and one partition.
    ///
    /// # Errors
    ///
    /// Returns the first schema violation.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let str_field = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let u64_field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let u32_field = |obj: &Json, key: &str| -> Result<u32, String> {
            let value = u64_field(obj, key)?;
            u32::try_from(value)
                .map_err(|_| format!("field {key:?} is {value}, out of range (max {})", u32::MAX))
        };
        let usize_field = |obj: &Json, key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let f64_field = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        };
        let weight_or_one = |obj: &Json| -> Result<Weight, String> {
            match obj.get("max_weight") {
                None => Ok(1),
                Some(w) => w.as_u64().ok_or("max_weight must be an integer".into()),
            }
        };

        let topology = json.get("topology").ok_or("missing field \"topology\"")?;
        let speeds = match json.get("speeds") {
            None => SpeedSpec::Uniform,
            Some(spec) => match str_field(spec, "model")?.as_str() {
                "uniform" => SpeedSpec::Uniform,
                "uniform_range" => SpeedSpec::UniformRange {
                    s_max: u64_field(spec, "s_max")?,
                },
                "powers_of_two" => SpeedSpec::PowersOfTwo {
                    classes: u32_field(spec, "classes")?,
                },
                other => return Err(format!("unknown speeds.model {other:?}")),
            },
        };
        let initial = json.get("initial").ok_or("missing field \"initial\"")?;
        let dist_spec = initial
            .get("distribution")
            .ok_or("missing field initial.distribution")?;
        let distribution = match str_field(dist_spec, "model")?.as_str() {
            "single_source" => TokenDistribution::SingleSource {
                source: match dist_spec.get("source") {
                    None => 0,
                    Some(s) => s.as_usize().ok_or("source must be an integer")?,
                },
            },
            "uniform_random" => TokenDistribution::UniformRandom,
            "almost_balanced" => TokenDistribution::AlmostBalanced,
            "geometric" => TokenDistribution::Geometric {
                ratio_percent: u32_field(dist_spec, "ratio_percent")?,
            },
            other => return Err(format!("unknown initial.distribution.model {other:?}")),
        };
        let pad = match initial.get("pad") {
            None => PadSpec::Tokens(0),
            Some(Json::Str(s)) if s == "degree" => PadSpec::Degree,
            Some(v) => PadSpec::Tokens(v.as_u64().ok_or("pad must be an integer or \"degree\"")?),
        };
        let arrivals = match json.get("arrivals") {
            None => ArrivalSpec::None,
            Some(spec) => match str_field(spec, "model")?.as_str() {
                "none" => ArrivalSpec::None,
                "poisson" => ArrivalSpec::Poisson {
                    rate_per_node: f64_field(spec, "rate_per_node")?,
                    max_weight: weight_or_one(spec)?,
                },
                "bursty" => ArrivalSpec::Bursty {
                    period: usize_field(spec, "period")?,
                    burst: u64_field(spec, "burst")?,
                    max_weight: weight_or_one(spec)?,
                },
                "hotspot" => ArrivalSpec::HotSpot {
                    rate: f64_field(spec, "rate")?,
                    node: usize_field(spec, "node")?,
                    max_weight: weight_or_one(spec)?,
                },
                other => return Err(format!("unknown arrivals.model {other:?}")),
            },
        };
        let completions = match json.get("completions") {
            None => ServiceSpec::None,
            Some(spec) => match str_field(spec, "model")?.as_str() {
                "none" => ServiceSpec::None,
                "uniform" => ServiceSpec::Uniform {
                    weight_per_speed: u64_field(spec, "weight_per_speed")?,
                },
                other => return Err(format!("unknown completions.model {other:?}")),
            },
        };
        let churn = match json.get("churn") {
            None => Vec::new(),
            Some(events) => events
                .as_array()
                .ok_or("churn must be an array")?
                .iter()
                .map(|event| {
                    let round = usize_field(event, "round")?;
                    let kind = match str_field(event, "kind")?.as_str() {
                        "rewire" => ChurnKind::Rewire {
                            seed: u64_field(event, "seed")?,
                        },
                        "resize" => ChurnKind::Resize {
                            target_n: usize_field(event, "target_n")?,
                            seed: u64_field(event, "seed")?,
                        },
                        "delta" => {
                            let edge_list = |key: &str| -> Result<Vec<(usize, usize)>, String> {
                                match event.get(key) {
                                    None => Ok(Vec::new()),
                                    Some(list) => list
                                        .as_array()
                                        .ok_or_else(|| {
                                            format!("churn delta {key:?} must be an array")
                                        })?
                                        .iter()
                                        .map(|pair| {
                                            let pair = pair.as_array().filter(|p| p.len() == 2);
                                            match pair {
                                                Some(p) => {
                                                    let u = p[0].as_usize();
                                                    let v = p[1].as_usize();
                                                    match (u, v) {
                                                        (Some(u), Some(v)) => Ok((u, v)),
                                                        _ => Err(format!(
                                                            "churn delta {key:?} entries must \
                                                             hold two non-negative integers"
                                                        )),
                                                    }
                                                }
                                                None => Err(format!(
                                                    "churn delta {key:?} entries must be \
                                                     [u, v] pairs"
                                                )),
                                            }
                                        })
                                        .collect(),
                                }
                            };
                            ChurnKind::Delta {
                                add: edge_list("add")?,
                                remove: edge_list("remove")?,
                            }
                        }
                        other => return Err(format!("unknown churn kind {other:?}")),
                    };
                    Ok(ChurnEvent { round, kind })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };

        Ok(Scenario {
            name: str_field(json, "name")?,
            seed: u64_field(json, "seed")?,
            rounds: usize_field(json, "rounds")?,
            sample_every: usize_field(json, "sample_every")?,
            shards: match json.get("shards") {
                None => 1,
                Some(_) => usize_field(json, "shards")?,
            },
            federation: match json.get("federation") {
                None => 1,
                Some(_) => usize_field(json, "federation")?,
            },
            algorithm: AlgorithmSpec::parse(&str_field(json, "algorithm")?)?,
            model: ModelSpec::parse(&str_field(json, "model")?)?,
            topology: TopologySpec {
                family: str_field(topology, "family")?,
                target_n: usize_field(topology, "target_n")?,
            },
            speeds,
            initial: InitialSpec {
                distribution,
                tokens_per_node: u64_field(initial, "tokens_per_node")?,
                pad,
            },
            arrivals,
            completions,
            churn,
        })
    }
}

/// Draws one Poisson(`lambda`) sample via chunked Knuth multiplication —
/// exact in distribution (a Poisson sum of Poissons), numerically safe for
/// large means, and deterministic per RNG state.
fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    let mut remaining = lambda;
    let mut total = 0u64;
    while remaining > 0.0 {
        let chunk = remaining.min(16.0);
        remaining -= chunk;
        let limit = (-chunk).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0..1.0);
            count += 1;
        }
        total += count;
    }
    total
}

/// Materialises a scenario's arrival and completion streams as per-round
/// [`RoundEvents`] batches, deterministically per seed.
///
/// The stream is topology-aware: after churn, call
/// [`set_topology`](ScenarioEvents::set_topology) so arrivals target the new
/// node range and completion budgets follow the new speeds.
#[derive(Debug, Clone)]
pub struct ScenarioEvents {
    rng: StdRng,
    arrivals: ArrivalSpec,
    completions: ServiceSpec,
    next_task_id: u64,
    speeds: Vec<u64>,
}

impl ScenarioEvents {
    /// Creates the stream for `scenario` on a built topology with `speeds`.
    /// `first_task_id` must exceed every id in the initial load so arrival
    /// ids never collide.
    pub fn new(scenario: &Scenario, speeds: &Speeds, first_task_id: u64) -> Self {
        ScenarioEvents {
            // A fixed offset decorrelates the event stream from the other
            // consumers of the master seed (graph build, speeds, initial).
            rng: StdRng::seed_from_u64(scenario.seed.wrapping_add(0x5EED_E4E7)),
            arrivals: scenario.arrivals,
            completions: scenario.completions,
            next_task_id: first_task_id,
            speeds: speeds.as_slice().to_vec(),
        }
    }

    /// Updates node count and speeds after topology churn.
    pub fn set_topology(&mut self, speeds: &Speeds) {
        self.speeds.clear();
        self.speeds.extend_from_slice(speeds.as_slice());
    }

    /// The id the next arriving task will get.
    pub fn next_task_id(&self) -> u64 {
        self.next_task_id
    }

    /// Fills `out` with the events of round `round` (cleared first). The
    /// batch lists completions before arrivals, matching the order
    /// `apply_events` consumes them in.
    pub fn fill_round(&mut self, round: usize, out: &mut RoundEvents) {
        out.clear();
        let n = self.speeds.len();
        match self.completions {
            ServiceSpec::None => {}
            ServiceSpec::Uniform { weight_per_speed } => {
                if weight_per_speed > 0 {
                    for (node, &speed) in self.speeds.iter().enumerate() {
                        out.completions.push((node, weight_per_speed * speed));
                    }
                }
            }
        }
        let mut push_arrival = |rng: &mut StdRng, next_id: &mut u64, node: usize, wmax: Weight| {
            let weight = if wmax <= 1 {
                1
            } else {
                rng.gen_range(1..=wmax)
            };
            let task = Task::new(TaskId(*next_id), weight);
            *next_id += 1;
            out.arrivals.push((node, task));
        };
        match self.arrivals {
            ArrivalSpec::None => {}
            ArrivalSpec::Poisson {
                rate_per_node,
                max_weight,
            } => {
                let count = poisson(&mut self.rng, rate_per_node * n as f64);
                for _ in 0..count {
                    let node = self.rng.gen_range(0..n);
                    push_arrival(&mut self.rng, &mut self.next_task_id, node, max_weight);
                }
            }
            ArrivalSpec::Bursty {
                period,
                burst,
                max_weight,
            } => {
                if (round + 1).is_multiple_of(period) {
                    let node = self.rng.gen_range(0..n);
                    for _ in 0..burst {
                        push_arrival(&mut self.rng, &mut self.next_task_id, node, max_weight);
                    }
                }
            }
            ArrivalSpec::HotSpot {
                rate,
                node,
                max_weight,
            } => {
                let count = poisson(&mut self.rng, rate);
                let node = node % n;
                for _ in 0..count {
                    push_arrival(&mut self.rng, &mut self.next_task_id, node, max_weight);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario {
            name: "test".into(),
            seed: 7,
            rounds: 100,
            sample_every: 10,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 64,
            },
            speeds: SpeedSpec::PowersOfTwo { classes: 2 },
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 3 },
                tokens_per_node: 8,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 2,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: vec![
                ChurnEvent {
                    round: 40,
                    kind: ChurnKind::Rewire { seed: 11 },
                },
                ChurnEvent {
                    round: 55,
                    kind: ChurnKind::Delta {
                        add: vec![(0, 9), (3, 17)],
                        remove: vec![(1, 2)],
                    },
                },
                ChurnEvent {
                    round: 70,
                    kind: ChurnKind::Resize {
                        target_n: 32,
                        seed: 12,
                    },
                },
            ],
            shards: 1,
            federation: 1,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let scenario = sample_scenario();
        let text = scenario.render_pretty();
        let parsed = Scenario::parse(&text).expect("round-trips");
        assert_eq!(parsed, scenario);
    }

    #[test]
    fn churn_delta_lists_default_to_empty_and_self_loops_are_rejected() {
        let text = r#"{
            "name": "d", "seed": 1, "rounds": 10, "sample_every": 2,
            "algorithm": "alg1", "model": "fos",
            "topology": {"family": "torus", "target_n": 16},
            "initial": {"distribution": {"model": "uniform_random"}, "tokens_per_node": 4},
            "churn": [{"round": 4, "kind": "delta"}]
        }"#;
        let scenario = Scenario::parse(text).expect("delta without lists parses");
        assert_eq!(
            scenario.churn[0].kind,
            ChurnKind::Delta {
                add: vec![],
                remove: vec![]
            }
        );

        let mut bad = sample_scenario();
        bad.churn = vec![ChurnEvent {
            round: 4,
            kind: ChurnKind::Delta {
                add: vec![(3, 3)],
                remove: vec![],
            },
        }];
        let err = bad.validate().expect_err("self-loop rejected");
        assert!(err.contains("self-loop"), "{err}");
    }

    #[test]
    fn optional_sections_default() {
        let text = r#"{
            "name": "minimal", "seed": 1, "rounds": 10, "sample_every": 2,
            "algorithm": "alg2", "model": "sos",
            "topology": {"family": "hypercube", "target_n": 16},
            "initial": {"distribution": {"model": "uniform_random"}, "tokens_per_node": 4}
        }"#;
        let scenario = Scenario::parse(text).expect("minimal scenario parses");
        assert_eq!(scenario.speeds, SpeedSpec::Uniform);
        assert_eq!(scenario.arrivals, ArrivalSpec::None);
        assert_eq!(scenario.completions, ServiceSpec::None);
        assert!(scenario.churn.is_empty());
        assert_eq!(scenario.initial.pad, PadSpec::Tokens(0));
        assert_eq!(scenario.shards, 1, "shards defaults to sequential");
        assert_eq!(scenario.federation, 1, "federation defaults to one process");
    }

    #[test]
    fn out_of_range_federation_is_rejected() {
        let mut s = sample_scenario();
        s.federation = 0;
        let err = s.validate().expect_err("zero federation rejected");
        assert!(err.contains("federation"), "{err}");
        let mut s = sample_scenario();
        s.federation = MAX_FEDERATION + 1;
        let err = s.validate().expect_err("oversized federation rejected");
        assert!(err.contains("maximum"), "{err}");
        let mut s = sample_scenario();
        s.federation = 4;
        s.validate().expect("a 4-partition scenario is valid");
        let parsed = Scenario::parse(&s.render_pretty()).expect("federation round-trips");
        assert_eq!(parsed.federation, 4);
    }

    #[test]
    fn big_seeds_round_trip_exactly() {
        // Seeds above 2^53 used to be rounded through f64 by the JSON layer;
        // the exact integer path must preserve every u64 bit for bit.
        for seed in [(1u64 << 53) + 1, u64::MAX, 0xDEAD_BEEF_DEAD_BEEF] {
            let scenario = Scenario {
                seed,
                ..sample_scenario()
            };
            let parsed = Scenario::parse(&scenario.render_pretty()).expect("round-trips");
            assert_eq!(parsed.seed, seed, "seed {seed} must survive a round trip");
            assert_eq!(parsed, scenario);
        }
    }

    #[test]
    fn out_of_range_u32_fields_are_parse_errors() {
        // `classes` and `ratio_percent` are u32 in the spec types; values
        // beyond u32::MAX used to truncate silently through `as u32`.
        let mut scenario = sample_scenario();
        scenario.churn.clear();
        let base = scenario.render_pretty();

        let too_many_classes = base.replace(
            r#""model": "powers_of_two",
    "classes": 2"#,
            r#""model": "powers_of_two",
    "classes": 4294967296"#,
        );
        assert_ne!(too_many_classes, base, "replacement must hit the document");
        let err = Scenario::parse(&too_many_classes).expect_err("rejects 2^32 classes");
        assert!(
            err.contains("classes") && err.contains("out of range"),
            "{err}"
        );

        let geometric = base.replace(
            r#""model": "single_source",
      "source": 3"#,
            r#""model": "geometric",
      "ratio_percent": 4294967297"#,
        );
        assert_ne!(geometric, base, "replacement must hit the document");
        let err = Scenario::parse(&geometric).expect_err("rejects out-of-range ratio_percent");
        assert!(
            err.contains("ratio_percent") && err.contains("out of range"),
            "{err}"
        );

        // In-range values still parse.
        let ok = base.replace(
            r#""model": "single_source",
      "source": 3"#,
            r#""model": "geometric",
      "ratio_percent": 55"#,
        );
        let parsed = Scenario::parse(&ok).expect("in-range ratio_percent parses");
        assert_eq!(
            parsed.initial.distribution,
            TokenDistribution::Geometric { ratio_percent: 55 }
        );
    }

    #[test]
    fn zero_period_bursts_are_rejected() {
        // `period: 0` would make `(round + 1).is_multiple_of(0)` never true:
        // the burst silently never fires. Validation must reject it instead.
        let mut s = sample_scenario();
        s.arrivals = ArrivalSpec::Bursty {
            period: 0,
            burst: 10,
            max_weight: 1,
        };
        let err = s.validate().expect_err("zero period rejected");
        assert!(err.contains("period"), "{err}");
        // And the parse entry point applies validation too.
        let text = s.render_pretty();
        assert!(Scenario::parse(&text).is_err(), "parse validates period");
    }

    #[test]
    fn out_of_range_shards_are_rejected() {
        let mut s = sample_scenario();
        s.shards = 0;
        let err = s.validate().expect_err("zero shards rejected");
        assert!(err.contains("shards"), "{err}");
        // Every shard beyond the first is an OS thread: absurd counts must
        // fail validation instead of aborting in `thread::spawn`.
        let mut s = sample_scenario();
        s.shards = MAX_SHARDS + 1;
        let err = s.validate().expect_err("oversized shards rejected");
        assert!(err.contains("maximum"), "{err}");
        let mut s = sample_scenario();
        s.shards = MAX_SHARDS;
        s.validate().expect("maximum shard count is allowed");
        s.shards = 7;
        let parsed = Scenario::parse(&s.render_pretty()).expect("shards round-trip");
        assert_eq!(parsed.shards, 7);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = sample_scenario();
        s.rounds = 0;
        assert!(s.validate().is_err());

        let mut s = sample_scenario();
        s.churn[0].round = 99999;
        assert!(s.validate().is_err());

        let mut s = sample_scenario();
        s.churn.swap(0, 1);
        assert!(s.validate().is_err(), "unsorted churn rejected");

        let mut s = sample_scenario();
        s.algorithm = AlgorithmSpec::Alg2;
        assert!(
            s.validate().is_err(),
            "alg2 with weighted arrivals rejected"
        );

        let mut s = sample_scenario();
        s.arrivals = ArrivalSpec::Poisson {
            rate_per_node: f64::NAN,
            max_weight: 1,
        };
        assert!(s.validate().is_err(), "NaN rate rejected");
    }

    #[test]
    fn event_stream_is_deterministic_per_seed() {
        let scenario = sample_scenario();
        let speeds = Speeds::uniform(64);
        let mut a = ScenarioEvents::new(&scenario, &speeds, 1_000);
        let mut b = ScenarioEvents::new(&scenario, &speeds, 1_000);
        let mut ea = RoundEvents::default();
        let mut eb = RoundEvents::default();
        for round in 0..50 {
            a.fill_round(round, &mut ea);
            b.fill_round(round, &mut eb);
            assert_eq!(ea.arrivals, eb.arrivals, "round {round}");
            assert_eq!(ea.completions, eb.completions, "round {round}");
        }
        assert_eq!(a.next_task_id(), b.next_task_id());
        assert!(a.next_task_id() > 1_000, "some arrivals were generated");
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        for &lambda in &[0.5, 4.0, 40.0] {
            let trials = 2_000;
            let total: u64 = (0..trials).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / trials as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "lambda {lambda}: empirical mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn bursts_land_on_a_single_node() {
        let scenario = Scenario {
            arrivals: ArrivalSpec::Bursty {
                period: 10,
                burst: 25,
                max_weight: 1,
            },
            completions: ServiceSpec::None,
            ..sample_scenario()
        };
        let speeds = Speeds::uniform(64);
        let mut events = ScenarioEvents::new(&scenario, &speeds, 0);
        let mut out = RoundEvents::default();
        let mut burst_rounds = 0;
        for round in 0..40 {
            events.fill_round(round, &mut out);
            if !out.arrivals.is_empty() {
                burst_rounds += 1;
                assert_eq!(out.arrivals.len(), 25);
                let node = out.arrivals[0].0;
                assert!(out.arrivals.iter().all(|&(v, _)| v == node));
            }
        }
        assert_eq!(burst_rounds, 4, "one burst per period");
    }

    #[test]
    fn completion_budgets_follow_speeds() {
        let scenario = Scenario {
            arrivals: ArrivalSpec::None,
            ..sample_scenario()
        };
        let speeds = Speeds::new(vec![1, 2, 4]).unwrap();
        let mut events = ScenarioEvents::new(&scenario, &speeds, 0);
        let mut out = RoundEvents::default();
        events.fill_round(0, &mut out);
        assert_eq!(out.completions, vec![(0, 1), (1, 2), (2, 4)]);
        // Topology change: budgets follow the new speeds.
        events.set_topology(&Speeds::uniform(2));
        events.fill_round(1, &mut out);
        assert_eq!(out.completions, vec![(0, 1), (1, 1)]);
    }
}
