//! Trace record/replay: a line-delimited JSON format capturing a scenario
//! run's event stream, so any run can be recorded once and replayed
//! bit-identically — on another machine, at another shard count, or through
//! the async ingestion channel instead of the synchronous generator.
//!
//! # Format
//!
//! One JSON document per line ([`lb_analysis::Json`]; seeds, task ids and
//! weights are written as exact integers, never rounded through `f64`):
//!
//! ```text
//! {"kind":"header","version":1,"scenario":{…}}          // effective spec
//! {"kind":"round","round":3,"completions":[[node,weight],…],
//!                            "arrivals":[[node,id,weight],…]}
//! {"kind":"round","round":4, …}                          // strictly increasing
//! {"kind":"end","rounds":2,"events":17}                  // truncation guard
//! ```
//!
//! * The **header** embeds the *effective* scenario — seed and shard
//!   overrides already applied — so a trace is self-contained: replay
//!   rebuilds the graph, speeds and initial load from the embedded spec and
//!   takes the per-round events from the round records instead of the
//!   scenario's generator. Topology churn stays in the spec (it is part of
//!   the scenario, not the event stream).
//! * **Round records** appear in strictly increasing round order; rounds
//!   with no events are simply absent. Completions precede arrivals within
//!   a record, matching the order `apply_events` consumes them in.
//! * The **end record** carries the round-record and event totals; a reader
//!   rejects a trace without a matching end record, so a truncated file
//!   (interrupted recording, partial copy) fails loudly instead of silently
//!   replaying a prefix.

use lb_analysis::{u64_exact, Json};
use lb_core::discrete::RoundEvents;
use lb_core::{Task, TaskId};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::scenario::Scenario;

/// The trace format version this module writes and the only one it reads.
pub const TRACE_VERSION: u64 = 1;

/// Streams a run's event batches into the line-delimited trace format.
///
/// Create with [`TraceWriter::create`] (file) or [`TraceWriter::new`] (any
/// writer); feed every applied batch to
/// [`record_round`](TraceWriter::record_round) and seal the trace with
/// [`finish`](TraceWriter::finish) — an unfinished trace is rejected by the
/// reader.
pub struct TraceWriter {
    out: Box<dyn Write>,
    last_round: Option<u64>,
    rounds: u64,
    events: u64,
    /// `(staging path, target path)` for file-backed writers: the trace is
    /// streamed into a temp sibling and published under the target by
    /// rename in [`finish`](TraceWriter::finish), so a crashed recording
    /// never leaves a torn trace at the target path.
    publish: Option<(PathBuf, PathBuf)>,
}

impl TraceWriter {
    /// Starts a trace on an arbitrary writer, emitting the header line for
    /// `scenario` (the *effective* spec: overrides already applied).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as a string.
    pub fn new(out: impl Write + 'static, scenario: &Scenario) -> Result<Self, String> {
        let mut writer = TraceWriter {
            out: Box::new(out),
            last_round: None,
            rounds: 0,
            events: 0,
            publish: None,
        };
        let header = Json::obj([
            ("kind", Json::from("header")),
            ("version", Json::from(TRACE_VERSION)),
            ("scenario", scenario.to_json()),
        ]);
        writer.write_line(&header)?;
        Ok(writer)
    }

    /// Starts a trace file destined for `path`. The trace is streamed into
    /// a temp sibling (`.{name}.tmp.{pid}`) and atomically published under
    /// `path` — fsync, rename, directory fsync — by
    /// [`finish`](TraceWriter::finish): a crash or error mid-recording
    /// leaves whatever was at `path` before untouched, never a torn trace.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on creation or write failure.
    pub fn create(path: impl AsRef<Path>, scenario: &Scenario) -> Result<Self, String> {
        let path = path.as_ref();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
        let tmp_name = format!(".{name}.tmp.{}", std::process::id());
        let tmp = match path.parent().filter(|p| !p.as_os_str().is_empty()) {
            Some(dir) => dir.join(tmp_name),
            None => PathBuf::from(tmp_name),
        };
        // lint: allow(R04, staging file only: finish() publishes it atomically)
        let file = fs::File::create(&tmp)
            .map_err(|e| format!("creating trace {}: {e}", path.display()))?;
        let mut writer = Self::new(io::BufWriter::new(file), scenario)?;
        writer.publish = Some((tmp, path.to_path_buf()));
        Ok(writer)
    }

    /// Records one round's applied batch. Empty batches are skipped (they
    /// carry no information: replay treats absent rounds as event-free).
    ///
    /// # Errors
    ///
    /// Returns a message if `round` does not exceed the previously recorded
    /// round, or on write failure.
    pub fn record_round(&mut self, round: u64, events: &RoundEvents) -> Result<(), String> {
        if events.is_empty() {
            return Ok(());
        }
        if let Some(last) = self.last_round {
            if round <= last {
                return Err(format!(
                    "trace rounds must be strictly increasing: {round} after {last}"
                ));
            }
        }
        let completions = events
            .completions
            .iter()
            .map(|&(node, weight)| Json::Arr(vec![Json::from(node), Json::from(weight)]))
            .collect();
        let arrivals = events
            .arrivals
            .iter()
            .map(|&(node, task)| {
                Json::Arr(vec![
                    Json::from(node),
                    Json::from(task.id().0),
                    Json::from(task.weight()),
                ])
            })
            .collect();
        let record = Json::obj([
            ("kind", Json::from("round")),
            ("round", Json::from(round)),
            ("completions", Json::Arr(completions)),
            ("arrivals", Json::Arr(arrivals)),
        ]);
        self.write_line(&record)?;
        self.last_round = Some(round);
        self.rounds += 1;
        self.events += u64_exact(events.arrivals.len() + events.completions.len());
        Ok(())
    }

    /// Seals the trace with the end record and flushes the writer. For
    /// file-backed writers ([`TraceWriter::create`]) this is also the
    /// publication point: the staged bytes are fsynced, renamed over the
    /// target path, and the rename itself is persisted with a directory
    /// fsync.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error as a string.
    pub fn finish(mut self) -> Result<(), String> {
        let end = Json::obj([
            ("kind", Json::from("end")),
            ("rounds", Json::from(self.rounds)),
            ("events", Json::from(self.events)),
        ]);
        self.write_line(&end)?;
        self.out
            .flush()
            .map_err(|e| format!("flushing trace: {e}"))?;
        let Some((tmp, target)) = self.publish.take() else {
            return Ok(());
        };
        drop(self); // closes the staged file (the pending publish is taken)
        fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .and_then(|()| fs::rename(&tmp, &target))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                format!("publishing trace {}: {e}", target.display())
            })?;
        // Persist the rename itself; best-effort where directories cannot
        // be opened.
        if let Some(dir) = target.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn write_line(&mut self, record: &Json) -> Result<(), String> {
        writeln!(self.out, "{}", record.render()).map_err(|e| format!("writing trace: {e}"))
    }
}

impl Drop for TraceWriter {
    /// An abandoned (unfinished) file-backed writer never publishes: the
    /// staged temp file is removed and the target path is left untouched —
    /// the same outcome a crash mid-recording produces, minus the stray
    /// temp.
    fn drop(&mut self) {
        if let Some((tmp, _)) = self.publish.take() {
            let _ = fs::remove_file(tmp);
        }
    }
}

/// One round's recorded events, decoded back into a [`RoundEvents`] shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRound {
    /// The round the batch applies before.
    pub round: u64,
    /// `(node, task id, weight)` triples, in recorded (application) order.
    pub arrivals: Vec<(usize, u64, u64)>,
    /// `(node, completion budget)` pairs, in recorded order.
    pub completions: Vec<(usize, u64)>,
}

impl TraceRound {
    /// Fills `out` (cleared first) with this record's batch.
    pub fn fill(&self, out: &mut RoundEvents) {
        out.clear();
        out.completions.extend_from_slice(&self.completions);
        out.arrivals.extend(
            self.arrivals
                .iter()
                .map(|&(node, id, weight)| (node, Task::new(TaskId(id), weight))),
        );
    }
}

/// A fully parsed trace: the effective scenario plus every recorded round.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The effective scenario recorded in the header (seed and shard
    /// overrides already applied at record time).
    pub scenario: Scenario,
    /// Round records, strictly increasing in `round`.
    pub rounds: Vec<TraceRound>,
}

impl Trace {
    /// Reads and parses the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for I/O and format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| format!("reading trace {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses a trace from its line-delimited text form, validating the
    /// header version, the embedded scenario, round ordering and bounds,
    /// and the end record's totals.
    ///
    /// # Errors
    ///
    /// Returns a message locating the first malformed line, and rejects
    /// traces without a matching end record (truncation).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty());

        let (header_idx, header_line) = lines.next().ok_or("empty trace")?;
        let header_lineno = header_idx + 1;
        let scenario =
            parse_header_line(header_line).map_err(|e| format!("line {header_lineno}: {e}"))?;

        let mut rounds: Vec<TraceRound> = Vec::new();
        let mut events_total = 0u64;
        let mut sealed = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if sealed {
                return Err(format!("line {lineno}: content after the end record"));
            }
            let record = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            match record.get("kind").and_then(Json::as_str) {
                Some("round") => {
                    let parsed = parse_round(&record).map_err(|e| format!("line {lineno}: {e}"))?;
                    if let Some(last) = rounds.last() {
                        if parsed.round <= last.round {
                            return Err(format!(
                                "line {lineno}: round {} after round {} (must be strictly \
                                 increasing)",
                                parsed.round, last.round
                            ));
                        }
                    }
                    if parsed.round >= u64_exact(scenario.rounds) {
                        return Err(format!(
                            "line {lineno}: round {} is beyond the scenario ({} rounds)",
                            parsed.round, scenario.rounds
                        ));
                    }
                    events_total += u64_exact(parsed.arrivals.len() + parsed.completions.len());
                    rounds.push(parsed);
                }
                Some("end") => {
                    let declared_rounds = record
                        .get("rounds")
                        .and_then(Json::as_u64)
                        .ok_or(format!("line {lineno}: end record has no rounds total"))?;
                    let declared_events = record
                        .get("events")
                        .and_then(Json::as_u64)
                        .ok_or(format!("line {lineno}: end record has no events total"))?;
                    if declared_rounds != u64_exact(rounds.len()) || declared_events != events_total
                    {
                        return Err(format!(
                            "line {lineno}: end record declares {declared_rounds} round(s) / \
                             {declared_events} event(s) but the trace carries {} / \
                             {events_total}",
                            rounds.len()
                        ));
                    }
                    sealed = true;
                }
                Some(other) => return Err(format!("line {lineno}: unknown record kind {other:?}")),
                None => return Err(format!("line {lineno}: record has no kind")),
            }
        }
        if !sealed {
            return Err("trace has no end record (truncated?)".into());
        }
        Ok(Trace { scenario, rounds })
    }

    /// Total recorded events across all rounds.
    pub fn event_count(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| u64_exact(r.arrivals.len() + r.completions.len()))
            .sum()
    }
}

/// Parses and validates one `{"kind":"header",…}` line, returning the
/// embedded effective scenario. Shared between the whole-file parser
/// ([`Trace::parse`]) and the streaming sources ([`crate::source`]).
pub(crate) fn parse_header_line(line: &str) -> Result<Scenario, String> {
    let header = Json::parse(line)?;
    if header.get("kind").and_then(Json::as_str) != Some("header") {
        return Err("expected the trace header record".into());
    }
    match header.get("version").and_then(Json::as_u64) {
        Some(TRACE_VERSION) => {}
        Some(v) => return Err(format!("unsupported trace version {v}")),
        None => return Err("missing trace version".into()),
    }
    let scenario_json = header.get("scenario").ok_or("header has no scenario")?;
    let scenario = Scenario::from_json(scenario_json)?;
    scenario.validate()?;
    Ok(scenario)
}

/// Decodes one `{"kind":"round",…}` record.
fn parse_round(record: &Json) -> Result<TraceRound, String> {
    let round = record
        .get("round")
        .and_then(Json::as_u64)
        .ok_or("round record has no round index")?;
    let completions = record
        .get("completions")
        .and_then(Json::as_array)
        .ok_or("round record has no completions array")?
        .iter()
        .map(|pair| {
            let items = pair.as_array().filter(|a| a.len() == 2);
            let node = items.and_then(|a| a[0].as_usize());
            let weight = items.and_then(|a| a[1].as_u64());
            match (node, weight) {
                (Some(node), Some(weight)) => Ok((node, weight)),
                _ => Err(format!("malformed completion {}", pair.render())),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let arrivals = record
        .get("arrivals")
        .and_then(Json::as_array)
        .ok_or("round record has no arrivals array")?
        .iter()
        .map(|triple| {
            let items = triple.as_array().filter(|a| a.len() == 3);
            let node = items.and_then(|a| a[0].as_usize());
            let id = items.and_then(|a| a[1].as_u64());
            let weight = items.and_then(|a| a[2].as_u64()).filter(|&w| w > 0);
            match (node, id, weight) {
                (Some(node), Some(id), Some(weight)) => Ok((node, id, weight)),
                _ => Err(format!("malformed arrival {}", triple.render())),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(TraceRound {
        round,
        arrivals,
        completions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::TokenDistribution;
    use crate::scenario::{
        AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, ServiceSpec, SpeedSpec,
        TopologySpec,
    };

    fn scenario() -> Scenario {
        Scenario {
            name: "trace_test".into(),
            seed: (1 << 53) + 7, // above f64-exact range: exercises Json::Int
            rounds: 50,
            sample_every: 10,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 16,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 4,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 2,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
            federation: 1,
        }
    }

    /// A `Write` sink the test can still read after the boxed writer took
    /// ownership of its clone.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn into_string(self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_batch(base_id: u64) -> RoundEvents {
        let mut events = RoundEvents::default();
        events.completions.push((0, 3));
        events.completions.push((5, 1));
        events.arrivals.push((2, Task::new(TaskId(base_id), 2)));
        events.arrivals.push((7, Task::new(TaskId(base_id + 1), 1)));
        events
    }

    fn write_sample_trace() -> String {
        let buf = SharedBuf::default();
        let mut writer = TraceWriter::new(buf.clone(), &scenario()).unwrap();
        writer.record_round(0, &sample_batch(100)).unwrap();
        writer.record_round(1, &RoundEvents::default()).unwrap(); // skipped
        writer.record_round(7, &sample_batch(102)).unwrap();
        writer.finish().unwrap();
        buf.into_string()
    }

    #[test]
    fn round_trips_losslessly() {
        let text = write_sample_trace();
        let trace = Trace::parse(&text).expect("parses");
        assert_eq!(trace.scenario, scenario(), "embedded scenario survives");
        assert_eq!(trace.rounds.len(), 2, "empty batch was skipped");
        assert_eq!(trace.rounds[0].round, 0);
        assert_eq!(trace.rounds[1].round, 7);
        assert_eq!(trace.event_count(), 8);

        // Decoding reproduces the recorded batch exactly.
        let mut out = RoundEvents::default();
        trace.rounds[0].fill(&mut out);
        let expect = sample_batch(100);
        assert_eq!(out.completions, expect.completions);
        assert_eq!(out.arrivals, expect.arrivals);

        // And a re-recorded decoded trace is byte-identical.
        let buf = SharedBuf::default();
        let mut writer = TraceWriter::new(buf.clone(), &trace.scenario).unwrap();
        for round in &trace.rounds {
            round.fill(&mut out);
            writer.record_round(round.round, &out).unwrap();
        }
        writer.finish().unwrap();
        assert_eq!(buf.into_string(), text);
    }

    #[test]
    fn truncated_traces_are_rejected() {
        let text = write_sample_trace();
        let without_end = text
            .lines()
            .take(text.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        let err = Trace::parse(&without_end).expect_err("no end record");
        assert!(err.contains("end record"), "{err}");

        // A tampered end record (dropped round) is caught by the totals.
        let dropped_round = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        let err = Trace::parse(&dropped_round).expect_err("totals mismatch");
        assert!(err.contains("declares"), "{err}");
    }

    #[test]
    fn malformed_records_are_located() {
        let text = write_sample_trace();
        let err = Trace::parse(&text.replace("\"round\",\"round\":7", "\"round\",\"round\":0"))
            .expect_err("non-increasing rounds rejected");
        assert!(err.contains("strictly increasing"), "{err}");

        let err = Trace::parse(&text.replace("\"round\":7", "\"round\":50"))
            .expect_err("out-of-range round rejected");
        assert!(err.contains("beyond the scenario"), "{err}");

        let err = Trace::parse("").expect_err("empty trace rejected");
        assert!(err.contains("empty"), "{err}");

        let err = Trace::parse("{\"kind\":\"round\"}").expect_err("header must come first");
        assert!(err.contains("header"), "{err}");

        let versioned = text.replace("\"version\":1", "\"version\":2");
        let err = Trace::parse(&versioned).expect_err("future versions rejected");
        assert!(err.contains("version 2"), "{err}");
    }

    #[test]
    fn writer_rejects_non_increasing_rounds() {
        let mut writer = TraceWriter::new(io::sink(), &scenario()).unwrap();
        writer.record_round(5, &sample_batch(0)).unwrap();
        let err = writer
            .record_round(5, &sample_batch(2))
            .expect_err("repeat round rejected");
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn exact_integers_survive_the_trace() {
        // Task ids and the scenario seed above 2^53 must round-trip exactly
        // through the line format (Json::Int, not f64).
        let buf = SharedBuf::default();
        let mut writer = TraceWriter::new(buf.clone(), &scenario()).unwrap();
        let mut events = RoundEvents::default();
        let big_id = (1u64 << 60) + 3;
        events.arrivals.push((1, Task::new(TaskId(big_id), 1)));
        writer.record_round(0, &events).unwrap();
        writer.finish().unwrap();
        let trace = Trace::parse(&buf.into_string()).unwrap();
        assert_eq!(trace.scenario.seed, (1 << 53) + 7);
        assert_eq!(trace.rounds[0].arrivals[0].1, (1u64 << 60) + 3);
    }
}
