//! Initial load distributions.
//!
//! Every generator produces an [`InitialLoad`] for a given graph (or node
//! count); the experiments sweep these to show the discrepancy bounds are
//! insensitive to where the load starts.

use lb_core::{InitialLoad, Task, TaskId};
use lb_graph::Graph;
use rand::Rng;

/// A recipe for an initial placement of unit-weight tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TokenDistribution {
    /// All tokens on one node (the paper's worst-case style input).
    SingleSource {
        /// The node receiving all tokens.
        source: usize,
    },
    /// Tokens placed uniformly at random, one by one.
    UniformRandom,
    /// Tokens split evenly, with the remainder going to the lowest-indexed
    /// nodes (an almost-balanced start).
    AlmostBalanced,
    /// Tokens concentrated geometrically: node `i` receives a share
    /// proportional to `ratio^i` (a skewed but not point-mass start).
    Geometric {
        /// Per-node decay numerator out of 100 (e.g. 50 halves the share from
        /// one node to the next).
        ratio_percent: u32,
    },
}

impl TokenDistribution {
    /// Materialises the distribution of `total` tokens over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if a `SingleSource` source index is out of
    /// range.
    pub fn generate(&self, n: usize, total: u64, rng: &mut impl Rng) -> InitialLoad {
        assert!(n > 0, "distribution requires at least one node");
        match *self {
            TokenDistribution::SingleSource { source } => {
                InitialLoad::single_source(n, source, total)
            }
            TokenDistribution::UniformRandom => {
                let mut counts = vec![0u64; n];
                for _ in 0..total {
                    counts[rng.gen_range(0..n)] += 1;
                }
                InitialLoad::from_token_counts(counts)
            }
            TokenDistribution::AlmostBalanced => {
                let base = total / n as u64;
                let remainder = (total % n as u64) as usize;
                let counts = (0..n).map(|i| base + u64::from(i < remainder)).collect();
                InitialLoad::from_token_counts(counts)
            }
            TokenDistribution::Geometric { ratio_percent } => {
                let ratio = f64::from(ratio_percent) / 100.0;
                let mut weights: Vec<f64> = Vec::with_capacity(n);
                let mut w = 1.0;
                for _ in 0..n {
                    weights.push(w);
                    w *= ratio;
                }
                let sum: f64 = weights.iter().sum();
                let mut counts: Vec<u64> = weights
                    .iter()
                    .map(|w| ((w / sum) * total as f64).floor() as u64)
                    .collect();
                // Give any rounding remainder to node 0 so the total is exact.
                let assigned: u64 = counts.iter().sum();
                counts[0] += total - assigned;
                InitialLoad::from_token_counts(counts)
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            TokenDistribution::SingleSource { source } => format!("single_source({source})"),
            TokenDistribution::UniformRandom => "uniform_random".to_string(),
            TokenDistribution::AlmostBalanced => "almost_balanced".to_string(),
            TokenDistribution::Geometric { ratio_percent } => {
                format!("geometric({ratio_percent}%)")
            }
        }
    }
}

/// Adds `extra_per_speed_unit · s_i` unit tokens to every node of an existing
/// distribution — the "sufficient initial load" padding required by part (2)
/// of Theorems 3 and 8 (`extra = d·w_max` for Algorithm 1).
///
/// # Panics
///
/// Panics if `speeds.len()` differs from the distribution's node count.
pub fn pad_for_min_load(
    initial: &InitialLoad,
    speeds: &lb_core::Speeds,
    extra_per_speed_unit: u64,
) -> InitialLoad {
    assert_eq!(speeds.len(), initial.node_count());
    let mut tasks = initial.clone().into_tasks();
    let mut next_id: u64 = tasks
        .iter()
        .flatten()
        .map(|t| t.id().0 + 1)
        .max()
        .unwrap_or(0);
    for (i, node_tasks) in tasks.iter_mut().enumerate() {
        let extra = extra_per_speed_unit * speeds.get(i);
        for _ in 0..extra {
            node_tasks.push(Task::new(TaskId(next_id), 1));
            next_id += 1;
        }
    }
    InitialLoad::from_tasks(tasks)
}

/// Places all tokens on the node of maximum eccentricity (the "far corner"),
/// an adversarial start for neighbourhood balancing on low-diameter graphs.
pub fn corner_source(graph: &Graph, total: u64) -> InitialLoad {
    let n = graph.node_count();
    assert!(n > 0, "corner_source requires a non-empty graph");
    // Pick the node with the largest BFS eccentricity from node 0, then the
    // farthest node from it (a 2-sweep heuristic for a peripheral node).
    let far = |from: usize| -> usize {
        graph
            .bfs_distances(from)
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.unwrap_or(0))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let a = far(0);
    let b = far(a);
    InitialLoad::single_source(n, b, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::Speeds;
    use lb_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_source_and_label() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = TokenDistribution::SingleSource { source: 2 };
        let load = d.generate(4, 12, &mut rng);
        assert_eq!(load.load_vector(), vec![0, 0, 12, 0]);
        assert!(d.label().contains('2'));
    }

    #[test]
    fn uniform_random_conserves_total() {
        let mut rng = StdRng::seed_from_u64(1);
        let load = TokenDistribution::UniformRandom.generate(10, 500, &mut rng);
        assert_eq!(load.total_weight(), 500);
        assert_eq!(load.node_count(), 10);
    }

    #[test]
    fn almost_balanced_is_within_one_token() {
        let mut rng = StdRng::seed_from_u64(2);
        let load = TokenDistribution::AlmostBalanced.generate(7, 40, &mut rng);
        assert_eq!(load.total_weight(), 40);
        let counts = load.load_vector();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn geometric_is_skewed_and_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let load = TokenDistribution::Geometric { ratio_percent: 50 }.generate(6, 1000, &mut rng);
        assert_eq!(load.total_weight(), 1000);
        let counts = load.load_vector();
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn padding_adds_speed_proportional_tokens() {
        let initial = InitialLoad::single_source(3, 0, 10);
        let speeds = Speeds::new(vec![1, 2, 3]).unwrap();
        let padded = pad_for_min_load(&initial, &speeds, 4);
        assert_eq!(padded.load_vector(), vec![10 + 4, 8, 12]);
        assert_eq!(padded.total_weight(), 10 + 4 + 8 + 12);
        // Task ids remain unique.
        let ids: std::collections::BTreeSet<u64> = padded
            .clone()
            .into_tasks()
            .iter()
            .flatten()
            .map(|t| t.id().0)
            .collect();
        assert_eq!(ids.len(), padded.task_count());
    }

    #[test]
    fn corner_source_picks_peripheral_node_on_path() {
        let g = generators::path(10).unwrap();
        let load = corner_source(&g, 5);
        let counts = load.load_vector();
        let loaded: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(loaded.len(), 1);
        assert!(
            loaded[0] == 0 || loaded[0] == 9,
            "endpoint expected, got {loaded:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = TokenDistribution::UniformRandom.generate(0, 5, &mut rng);
    }
}
