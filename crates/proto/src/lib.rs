//! # lb-proto
//!
//! The versioned, line-delimited wire protocol shared by every socket
//! front-end of the workspace: one JSON record per line, client speaks
//! first, every record carries a `"kind"` tag. This crate owns the **single
//! parse/emit surface** — [`Record::parse`] and [`Record::render`] — so the
//! server and client sides of `lb serve`, `lb serve-trace --connect` and
//! `lb federate` can never drift apart on framing.
//!
//! ## Versions
//!
//! * **v1** ([`PROTOCOL_V1`]) — the trace-ingest handshake spoken by
//!   `lb serve`: [`Record::Hello`], [`Record::Header`], [`Record::Welcome`],
//!   [`Record::Reject`]. The byte layout matches the records `lb serve` has
//!   always spoken, so v1 clients and servers interoperate unchanged.
//! * **v2** ([`PROTOCOL_V2`]) — the federation round-synchronization
//!   protocol layered on the same framing: a coordinator drives `parts`
//!   worker processes through per-round barrier and exchange records
//!   ([`Record::Join`] through [`Record::Abort`]). v2 extends v1 — a v2
//!   listener still accepts v1 ingest handshakes.
//!
//! ## Determinism
//!
//! Every `f64` travels as its IEEE-754 bit pattern inside a JSON integer
//! (never as a decimal float), so a value crosses a process boundary
//! bit-identically. Rendering is insertion-ordered and stable: the same
//! record always renders to the same bytes.
//!
//! Semantic validation — protocol-version checks, scenario authentication,
//! rank bounds — is deliberately **not** done here: [`Record::parse`] checks
//! structure only and hands the typed record to the caller, which owns the
//! policy (and its error strings).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use lb_analysis::Json;
use std::error::Error;
use std::fmt;

/// Protocol version of the trace-ingest handshake (`lb serve`).
pub const PROTOCOL_V1: u64 = 1;

/// Protocol version of the federation round protocol (`lb federate`).
pub const PROTOCOL_V2: u64 = 2;

/// Errors produced while parsing a wire record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The line is not valid JSON, or a required field is missing or of the
    /// wrong type.
    Malformed {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The line parses as JSON but its `kind` tag names no known record.
    UnknownKind {
        /// The unrecognized kind tag.
        kind: String,
    },
}

impl ProtoError {
    fn malformed(reason: impl Into<String>) -> Self {
        ProtoError::Malformed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Malformed { reason } => write!(f, "{reason}"),
            ProtoError::UnknownKind { kind } => write!(f, "unknown record kind {kind:?}"),
        }
    }
}

impl Error for ProtoError {}

/// One real-task delivery crossing a partition boundary: the canonical edge
/// it travelled, the receiving node, and the task's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTask {
    /// Canonical edge the task moved over (global edge id).
    pub edge: u64,
    /// Receiving node (global node id).
    pub node: u64,
    /// Task identity.
    pub id: u64,
    /// Task weight.
    pub weight: u64,
    /// True for dummy tokens drawn from the infinite source.
    pub dummy: bool,
}

/// One partition's outgoing cross-partition effects for a round, as they
/// travel on the wire. Mirrors `lb_core::SendBatch` field by field, with
/// global ids throughout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireBatch {
    /// Real-task deliveries, in the sender's canonical edge order.
    pub tasks: Vec<WireTask>,
    /// Aggregate dummy-unit deliveries per receiving node (Algorithm 1).
    pub dummy: Vec<(u64, u64)>,
    /// `(node, real, dummy)` token deliveries per receiving node
    /// (Algorithm 2).
    pub tokens: Vec<(u64, u64, u64)>,
    /// `(edge, delta)` discrete-flow ledger updates for crossing edges.
    pub deltas: Vec<(u64, i64)>,
}

/// A parsed wire record: every line either side of any `lb` socket speaks.
///
/// The v1 records carry the ingest handshake; the v2 records carry the
/// federation round protocol. See the [crate docs](self) for the flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Record {
    // -- v1: trace-ingest handshake ------------------------------------
    /// Client → server greeting opening an ingest connection.
    Hello {
        /// Protocol version the client speaks.
        version: u64,
        /// Feed name the connection claims.
        feed: String,
    },
    /// The trace header: version plus the embedded scenario (opaque here;
    /// the server authenticates it against its own).
    Header {
        /// Trace format version.
        version: u64,
        /// The scenario document the trace was recorded from.
        scenario: Json,
    },
    /// Server → client acceptance of a feed.
    Welcome {
        /// Protocol version the server speaks.
        version: u64,
        /// The admitted feed name.
        feed: String,
        /// Last round already admitted from this feed (reconnects resume
        /// strictly after it); `None` for a fresh feed.
        last_round: Option<u64>,
    },
    /// Server → client refusal; the connection is dropped afterwards.
    Reject {
        /// Protocol version the server speaks.
        version: u64,
        /// Why the handshake was refused.
        error: String,
    },
    // -- v2: federation round protocol ---------------------------------
    /// Worker → coordinator greeting: claims one partition rank.
    Join {
        /// Protocol version the worker speaks (v2).
        version: u64,
        /// Partition rank this worker claims.
        rank: u64,
        /// Partition count the worker was launched for.
        parts: u64,
    },
    /// Coordinator → worker: the effective scenario and run shape; the
    /// worker builds its engine from this and nothing else.
    Start {
        /// The effective scenario document (seed and federation overrides
        /// already applied).
        scenario: Json,
        /// Number of partitions in the run.
        parts: u64,
        /// Intra-partition shard count each worker should use.
        shards: u64,
        /// Checkpoint cadence in rounds; `None` disables checkpointing.
        checkpoint_every: Option<u64>,
    },
    /// Coordinator → worker round barrier: all workers proceed into
    /// `round` together.
    Round {
        /// The round about to execute.
        round: u64,
    },
    /// Boundary-node twin loads, as `(node, f64-bits)` entries. Workers
    /// send their own boundary (rank-tagged); the coordinator broadcasts
    /// the combined list (`rank: None`).
    Loads {
        /// Sending worker's rank, or `None` for the coordinator's combined
        /// broadcast.
        rank: Option<u64>,
        /// `(global node id, IEEE-754 bits of the twin load)`.
        entries: Vec<(u64, u64)>,
    },
    /// Crossing-edge kernel flows, as `(edge, forward-bits, backward-bits)`
    /// entries; same gather/broadcast shape as [`Record::Loads`].
    Flows {
        /// Sending worker's rank, or `None` for the coordinator's combined
        /// broadcast.
        rank: Option<u64>,
        /// `(global edge id, forward flow bits, backward flow bits)`.
        entries: Vec<(u64, u64, u64)>,
    },
    /// Worker → coordinator: this partition's outgoing cross-partition
    /// deliveries for the round.
    Sends {
        /// Sending worker's rank.
        rank: u64,
        /// The outgoing batch.
        batch: WireBatch,
    },
    /// Coordinator → worker: every partition's batch for the round, rank-
    /// tagged, so each worker merges deliveries in global edge order.
    Deliver {
        /// `(rank, batch)` for every partition, in rank order.
        batches: Vec<(u64, WireBatch)>,
    },
    /// Worker → coordinator: this partition's slice of a round sample.
    Sample {
        /// Sending worker's rank.
        rank: u64,
        /// The sampled round.
        round: u64,
        /// Owned-range total loads, as IEEE-754 bits, in node order.
        loads: Vec<u64>,
        /// Owned-range real (non-dummy) loads, as IEEE-754 bits.
        real: Vec<u64>,
        /// Partition's dummy-load partial sum.
        dummy_load: u64,
        /// Partition's arrived-weight partial sum.
        arrived: u64,
        /// Partition's completed-weight partial sum.
        completed: u64,
    },
    /// Worker → coordinator: a full rendered snapshot of this partition's
    /// engine (foreign entries stale), for churn reassembly and
    /// checkpoints.
    State {
        /// Sending worker's rank.
        rank: u64,
        /// The round the state was captured at.
        round: u64,
        /// The rendered snapshot document.
        snapshot: String,
    },
    /// Coordinator → worker: the assembled full snapshot every worker
    /// restores from before continuing.
    Restore {
        /// The round the assembled state belongs to.
        round: u64,
        /// The rendered snapshot document.
        snapshot: String,
    },
    /// Coordinator → worker: the run is complete; reply with
    /// [`Record::Done`] and exit.
    Finish,
    /// Worker → coordinator: final per-partition totals.
    Done {
        /// Replying worker's rank.
        rank: u64,
        /// Partition's dummy-created partial sum.
        dummy_created: u64,
        /// The engine name the worker ran (e.g. `alg1(fos)`).
        engine: String,
    },
    /// Either direction: the sender hit a fatal error and is going away.
    Abort {
        /// What went wrong.
        error: String,
    },
}

impl Record {
    /// The `kind` tag this record renders with.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Hello { .. } => "hello",
            Record::Header { .. } => "header",
            Record::Welcome { .. } => "welcome",
            Record::Reject { .. } => "reject",
            Record::Join { .. } => "join",
            Record::Start { .. } => "start",
            Record::Round { .. } => "round",
            Record::Loads { .. } => "loads",
            Record::Flows { .. } => "flows",
            Record::Sends { .. } => "sends",
            Record::Deliver { .. } => "deliver",
            Record::Sample { .. } => "sample",
            Record::State { .. } => "state",
            Record::Restore { .. } => "restore",
            Record::Finish => "finish",
            Record::Done { .. } => "done",
            Record::Abort { .. } => "abort",
        }
    }

    /// Parses one wire line into a typed record.
    ///
    /// Structural validation only: required fields must be present and
    /// well-typed, but no version or policy checks happen here.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Malformed`] for bad JSON or missing/mistyped fields,
    /// [`ProtoError::UnknownKind`] for an unrecognized `kind` tag.
    pub fn parse(line: &str) -> Result<Record, ProtoError> {
        let json = Json::parse(line).map_err(ProtoError::malformed)?;
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::malformed("record has no kind tag"))?;
        match kind {
            "hello" => Ok(Record::Hello {
                version: u64_field(&json, "hello", "version")?,
                feed: str_field(&json, "hello", "feed")?,
            }),
            "header" => Ok(Record::Header {
                version: u64_field(&json, "trace header", "version")?,
                scenario: json
                    .get("scenario")
                    .cloned()
                    .ok_or_else(|| ProtoError::malformed("trace header has no scenario"))?,
            }),
            "welcome" => Ok(Record::Welcome {
                version: u64_field(&json, "welcome", "version")?,
                feed: str_field(&json, "welcome", "feed")?,
                last_round: opt_u64_field(&json, "welcome", "last_round")?,
            }),
            "reject" => Ok(Record::Reject {
                version: u64_field(&json, "reject", "version")?,
                error: str_field(&json, "reject", "error")?,
            }),
            "join" => Ok(Record::Join {
                version: u64_field(&json, "join", "version")?,
                rank: u64_field(&json, "join", "rank")?,
                parts: u64_field(&json, "join", "parts")?,
            }),
            "start" => Ok(Record::Start {
                scenario: json
                    .get("scenario")
                    .cloned()
                    .ok_or_else(|| ProtoError::malformed("start has no scenario"))?,
                parts: u64_field(&json, "start", "parts")?,
                shards: u64_field(&json, "start", "shards")?,
                checkpoint_every: opt_u64_field(&json, "start", "checkpoint_every")?,
            }),
            "round" => Ok(Record::Round {
                round: u64_field(&json, "round", "round")?,
            }),
            "loads" => Ok(Record::Loads {
                rank: opt_u64_field(&json, "loads", "rank")?,
                entries: pairs_field(&json, "loads", "entries")?,
            }),
            "flows" => Ok(Record::Flows {
                rank: opt_u64_field(&json, "flows", "rank")?,
                entries: triples_field(&json, "flows", "entries")?,
            }),
            "sends" => Ok(Record::Sends {
                rank: u64_field(&json, "sends", "rank")?,
                batch: parse_batch(
                    json.get("batch")
                        .ok_or_else(|| ProtoError::malformed("sends has no batch"))?,
                )?,
            }),
            "deliver" => {
                let raw = array_field(&json, "deliver", "batches")?;
                let mut batches = Vec::with_capacity(raw.len());
                for entry in raw {
                    let rank = entry
                        .get("rank")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::malformed("deliver batch has no rank"))?;
                    let batch = parse_batch(
                        entry
                            .get("batch")
                            .ok_or_else(|| ProtoError::malformed("deliver entry has no batch"))?,
                    )?;
                    batches.push((rank, batch));
                }
                Ok(Record::Deliver { batches })
            }
            "sample" => Ok(Record::Sample {
                rank: u64_field(&json, "sample", "rank")?,
                round: u64_field(&json, "sample", "round")?,
                loads: u64s_field(&json, "sample", "loads")?,
                real: u64s_field(&json, "sample", "real")?,
                dummy_load: u64_field(&json, "sample", "dummy_load")?,
                arrived: u64_field(&json, "sample", "arrived")?,
                completed: u64_field(&json, "sample", "completed")?,
            }),
            "state" => Ok(Record::State {
                rank: u64_field(&json, "state", "rank")?,
                round: u64_field(&json, "state", "round")?,
                snapshot: str_field(&json, "state", "snapshot")?,
            }),
            "restore" => Ok(Record::Restore {
                round: u64_field(&json, "restore", "round")?,
                snapshot: str_field(&json, "restore", "snapshot")?,
            }),
            "finish" => Ok(Record::Finish),
            "done" => Ok(Record::Done {
                rank: u64_field(&json, "done", "rank")?,
                dummy_created: u64_field(&json, "done", "dummy_created")?,
                engine: str_field(&json, "done", "engine")?,
            }),
            "abort" => Ok(Record::Abort {
                error: str_field(&json, "abort", "error")?,
            }),
            other => Err(ProtoError::UnknownKind {
                kind: other.to_string(),
            }),
        }
    }

    /// Renders the record to its one-line wire form (no trailing newline).
    ///
    /// Rendering is stable — the same record always produces the same
    /// bytes — and `parse(render(r)) == r` for every record.
    pub fn render(&self) -> String {
        let json = match self {
            Record::Hello { version, feed } => Json::obj([
                ("kind", Json::from("hello")),
                ("version", Json::from(*version)),
                ("feed", Json::from(feed.as_str())),
            ]),
            Record::Header { version, scenario } => Json::obj([
                ("kind", Json::from("header")),
                ("version", Json::from(*version)),
                ("scenario", scenario.clone()),
            ]),
            Record::Welcome {
                version,
                feed,
                last_round,
            } => Json::obj([
                ("kind", Json::from("welcome")),
                ("version", Json::from(*version)),
                ("feed", Json::from(feed.as_str())),
                ("last_round", last_round.map_or(Json::Null, Json::from)),
            ]),
            Record::Reject { version, error } => Json::obj([
                ("kind", Json::from("reject")),
                ("version", Json::from(*version)),
                ("error", Json::from(error.as_str())),
            ]),
            Record::Join {
                version,
                rank,
                parts,
            } => Json::obj([
                ("kind", Json::from("join")),
                ("version", Json::from(*version)),
                ("rank", Json::from(*rank)),
                ("parts", Json::from(*parts)),
            ]),
            Record::Start {
                scenario,
                parts,
                shards,
                checkpoint_every,
            } => Json::obj([
                ("kind", Json::from("start")),
                ("scenario", scenario.clone()),
                ("parts", Json::from(*parts)),
                ("shards", Json::from(*shards)),
                (
                    "checkpoint_every",
                    checkpoint_every.map_or(Json::Null, Json::from),
                ),
            ]),
            Record::Round { round } => {
                Json::obj([("kind", Json::from("round")), ("round", Json::from(*round))])
            }
            Record::Loads { rank, entries } => Json::obj([
                ("kind", Json::from("loads")),
                ("rank", rank.map_or(Json::Null, Json::from)),
                ("entries", render_pairs(entries)),
            ]),
            Record::Flows { rank, entries } => Json::obj([
                ("kind", Json::from("flows")),
                ("rank", rank.map_or(Json::Null, Json::from)),
                ("entries", render_triples(entries)),
            ]),
            Record::Sends { rank, batch } => Json::obj([
                ("kind", Json::from("sends")),
                ("rank", Json::from(*rank)),
                ("batch", render_batch(batch)),
            ]),
            Record::Deliver { batches } => Json::obj([
                ("kind", Json::from("deliver")),
                (
                    "batches",
                    Json::Arr(
                        batches
                            .iter()
                            .map(|(rank, batch)| {
                                Json::obj([
                                    ("rank", Json::from(*rank)),
                                    ("batch", render_batch(batch)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Record::Sample {
                rank,
                round,
                loads,
                real,
                dummy_load,
                arrived,
                completed,
            } => Json::obj([
                ("kind", Json::from("sample")),
                ("rank", Json::from(*rank)),
                ("round", Json::from(*round)),
                ("loads", render_u64s(loads)),
                ("real", render_u64s(real)),
                ("dummy_load", Json::from(*dummy_load)),
                ("arrived", Json::from(*arrived)),
                ("completed", Json::from(*completed)),
            ]),
            Record::State {
                rank,
                round,
                snapshot,
            } => Json::obj([
                ("kind", Json::from("state")),
                ("rank", Json::from(*rank)),
                ("round", Json::from(*round)),
                ("snapshot", Json::from(snapshot.as_str())),
            ]),
            Record::Restore { round, snapshot } => Json::obj([
                ("kind", Json::from("restore")),
                ("round", Json::from(*round)),
                ("snapshot", Json::from(snapshot.as_str())),
            ]),
            Record::Finish => Json::obj([("kind", Json::from("finish"))]),
            Record::Done {
                rank,
                dummy_created,
                engine,
            } => Json::obj([
                ("kind", Json::from("done")),
                ("rank", Json::from(*rank)),
                ("dummy_created", Json::from(*dummy_created)),
                ("engine", Json::from(engine.as_str())),
            ]),
            Record::Abort { error } => Json::obj([
                ("kind", Json::from("abort")),
                ("error", Json::from(error.as_str())),
            ]),
        };
        json.render()
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn u64_field(json: &Json, record: &str, key: &str) -> Result<u64, ProtoError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::malformed(format!("{record} has no {key}")))
}

fn opt_u64_field(json: &Json, record: &str, key: &str) -> Result<Option<u64>, ProtoError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value.as_u64().map(Some).ok_or_else(|| {
            ProtoError::malformed(format!("{record} field {key} is not an integer"))
        }),
    }
}

fn str_field(json: &Json, record: &str, key: &str) -> Result<String, ProtoError> {
    match json.get(key).and_then(Json::as_str) {
        Some(text) if !text.is_empty() => Ok(text.to_string()),
        Some(_) if key == "feed" => {
            Err(ProtoError::malformed(format!("{record} has no {key} name")))
        }
        Some(text) => Ok(text.to_string()),
        None => Err(ProtoError::malformed(format!("{record} has no {key}"))),
    }
}

fn array_field<'a>(json: &'a Json, record: &str, key: &str) -> Result<&'a [Json], ProtoError> {
    json.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| ProtoError::malformed(format!("{record} has no {key}")))
}

fn item_u64(item: &Json, what: &str) -> Result<u64, ProtoError> {
    item.as_u64()
        .ok_or_else(|| ProtoError::malformed(format!("{what} entry is not an integer")))
}

fn item_i64(item: &Json, what: &str) -> Result<i64, ProtoError> {
    match item {
        Json::Int(value) => i64::try_from(*value)
            .map_err(|_| ProtoError::malformed(format!("{what} entry overflows i64"))),
        _ => Err(ProtoError::malformed(format!(
            "{what} entry is not an integer"
        ))),
    }
}

fn u64s_field(json: &Json, record: &str, key: &str) -> Result<Vec<u64>, ProtoError> {
    array_field(json, record, key)?
        .iter()
        .map(|item| item_u64(item, key))
        .collect()
}

fn pairs_field(json: &Json, record: &str, key: &str) -> Result<Vec<(u64, u64)>, ProtoError> {
    array_field(json, record, key)?
        .iter()
        .map(|entry| {
            let Some([a, b]) = entry.as_array().and_then(|items| items.first_chunk()) else {
                return Err(ProtoError::malformed(format!(
                    "{record} {key} entry is not a pair"
                )));
            };
            Ok((item_u64(a, key)?, item_u64(b, key)?))
        })
        .collect()
}

fn triples_field(json: &Json, record: &str, key: &str) -> Result<Vec<(u64, u64, u64)>, ProtoError> {
    array_field(json, record, key)?
        .iter()
        .map(|entry| {
            let Some([a, b, c]) = entry.as_array().and_then(|items| items.first_chunk()) else {
                return Err(ProtoError::malformed(format!(
                    "{record} {key} entry is not a triple"
                )));
            };
            Ok((item_u64(a, key)?, item_u64(b, key)?, item_u64(c, key)?))
        })
        .collect()
}

fn parse_batch(json: &Json) -> Result<WireBatch, ProtoError> {
    let mut tasks = Vec::new();
    for entry in array_field(json, "batch", "tasks")? {
        let Some([edge, node, id, weight, dummy]) =
            entry.as_array().and_then(|items| items.first_chunk())
        else {
            return Err(ProtoError::malformed(
                "batch tasks entry is not a 5-element array",
            ));
        };
        let dummy = match dummy {
            Json::Bool(flag) => *flag,
            _ => return Err(ProtoError::malformed("batch task dummy flag is not a bool")),
        };
        tasks.push(WireTask {
            edge: item_u64(edge, "tasks")?,
            node: item_u64(node, "tasks")?,
            id: item_u64(id, "tasks")?,
            weight: item_u64(weight, "tasks")?,
            dummy,
        });
    }
    let dummy = pairs_field(json, "batch", "dummy")?;
    let tokens = triples_field(json, "batch", "tokens")?;
    let deltas = array_field(json, "batch", "deltas")?
        .iter()
        .map(|entry| {
            let Some([e, d]) = entry.as_array().and_then(|items| items.first_chunk()) else {
                return Err(ProtoError::malformed("batch deltas entry is not a pair"));
            };
            Ok((item_u64(e, "deltas")?, item_i64(d, "deltas")?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WireBatch {
        tasks,
        dummy,
        tokens,
        deltas,
    })
}

fn render_u64s(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::from(v)).collect())
}

fn render_pairs(entries: &[(u64, u64)]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::from(a), Json::from(b)]))
            .collect(),
    )
}

fn render_triples(entries: &[(u64, u64, u64)]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|&(a, b, c)| Json::Arr(vec![Json::from(a), Json::from(b), Json::from(c)]))
            .collect(),
    )
}

fn render_batch(batch: &WireBatch) -> Json {
    Json::obj([
        (
            "tasks",
            Json::Arr(
                batch
                    .tasks
                    .iter()
                    .map(|task| {
                        Json::Arr(vec![
                            Json::from(task.edge),
                            Json::from(task.node),
                            Json::from(task.id),
                            Json::from(task.weight),
                            Json::from(task.dummy),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dummy", render_pairs(&batch.dummy)),
        ("tokens", render_triples(&batch.tokens)),
        (
            "deltas",
            Json::Arr(
                batch
                    .deltas
                    .iter()
                    .map(|&(e, d)| Json::Arr(vec![Json::from(e), Json::from(d)]))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: Record) {
        let line = record.render();
        assert!(!line.contains('\n'), "wire form must be one line: {line}");
        let parsed = Record::parse(&line).expect("rendered record parses");
        assert_eq!(parsed, record);
    }

    #[test]
    fn v1_records_roundtrip_and_pin_their_bytes() {
        let hello = Record::Hello {
            version: PROTOCOL_V1,
            feed: "a".into(),
        };
        // Byte-compatibility with pre-crate `lb serve`: the rendered form is
        // pinned, not just the parse/render fixpoint.
        assert_eq!(hello.render(), r#"{"kind":"hello","version":1,"feed":"a"}"#);
        roundtrip(hello);
        roundtrip(Record::Welcome {
            version: PROTOCOL_V1,
            feed: "replay".into(),
            last_round: Some(7),
        });
        assert_eq!(
            Record::Welcome {
                version: PROTOCOL_V1,
                feed: "a".into(),
                last_round: None,
            }
            .render(),
            r#"{"kind":"welcome","version":1,"feed":"a","last_round":null}"#
        );
        roundtrip(Record::Reject {
            version: PROTOCOL_V1,
            error: "feed \"a\" is already connected".into(),
        });
        roundtrip(Record::Header {
            version: 1,
            scenario: Json::obj([("name", Json::from("s"))]),
        });
    }

    #[test]
    fn v2_records_roundtrip() {
        roundtrip(Record::Join {
            version: PROTOCOL_V2,
            rank: 1,
            parts: 4,
        });
        roundtrip(Record::Start {
            scenario: Json::obj([("rounds", Json::from(32u64))]),
            parts: 4,
            shards: 2,
            checkpoint_every: Some(8),
        });
        roundtrip(Record::Start {
            scenario: Json::Null,
            parts: 2,
            shards: 1,
            checkpoint_every: None,
        });
        roundtrip(Record::Round { round: 12 });
        roundtrip(Record::Loads {
            rank: Some(3),
            entries: vec![(0, 4_607_182_418_800_017_408), (5, 0)],
        });
        roundtrip(Record::Loads {
            rank: None,
            entries: Vec::new(),
        });
        roundtrip(Record::Flows {
            rank: Some(0),
            entries: vec![(9, 17, u64::MAX)],
        });
        roundtrip(Record::Sends {
            rank: 2,
            batch: WireBatch {
                tasks: vec![WireTask {
                    edge: 3,
                    node: 7,
                    id: 1 << 60,
                    weight: 2,
                    dummy: false,
                }],
                dummy: vec![(7, 4)],
                tokens: vec![(1, 2, 3)],
                deltas: vec![(3, -5), (9, i64::MAX)],
            },
        });
        roundtrip(Record::Deliver {
            batches: vec![(0, WireBatch::default()), (1, WireBatch::default())],
        });
        roundtrip(Record::Sample {
            rank: 0,
            round: 16,
            loads: vec![1, 2, 3],
            real: vec![4, 5, 6],
            dummy_load: 7,
            arrived: 8,
            completed: 9,
        });
        roundtrip(Record::State {
            rank: 1,
            round: 8,
            snapshot: "{\"kind\":\"header\"}\n{\"kind\":\"end\"}\n".into(),
        });
        roundtrip(Record::Restore {
            round: 8,
            snapshot: "line one\nline two\n".into(),
        });
        roundtrip(Record::Finish);
        roundtrip(Record::Done {
            rank: 3,
            dummy_created: 11,
            engine: "alg2(sos)".into(),
        });
        roundtrip(Record::Abort {
            error: "worker 2 went away".into(),
        });
    }

    #[test]
    fn malformed_lines_produce_typed_errors() {
        assert!(matches!(
            Record::parse("not json"),
            Err(ProtoError::Malformed { .. })
        ));
        assert!(matches!(
            Record::parse(r#"{"version":1}"#),
            Err(ProtoError::Malformed { .. })
        ));
        assert!(matches!(
            Record::parse(r#"{"kind":"warp"}"#),
            Err(ProtoError::UnknownKind { kind }) if kind == "warp"
        ));
        let err = Record::parse(r#"{"kind":"hello","feed":"a"}"#).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let err = Record::parse(r#"{"kind":"hello","version":1,"feed":""}"#).unwrap_err();
        assert!(err.to_string().contains("feed"), "{err}");
        let err = Record::parse(r#"{"kind":"round"}"#).unwrap_err();
        assert!(err.to_string().contains("round"), "{err}");
        let err = Record::parse(r#"{"kind":"sends","rank":0}"#).unwrap_err();
        assert!(err.to_string().contains("batch"), "{err}");
        let err = Record::parse(r#"{"kind":"loads","rank":0,"entries":[[1]]}"#).unwrap_err();
        assert!(err.to_string().contains("pair"), "{err}");
    }

    #[test]
    fn float_bits_survive_the_wire_exactly() {
        for value in [0.0f64, -0.0, 1.0, f64::MIN_POSITIVE, 1.0 / 3.0, 6.25e17] {
            let record = Record::Loads {
                rank: Some(0),
                entries: vec![(0, value.to_bits())],
            };
            let Record::Loads { entries, .. } = Record::parse(&record.render()).unwrap() else {
                panic!("loads record changed kind on the wire");
            };
            assert_eq!(f64::from_bits(entries[0].1).to_bits(), value.to_bits());
        }
    }

    #[test]
    fn error_type_is_displayable_and_sendable() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ProtoError>();
        let err = ProtoError::UnknownKind { kind: "x".into() };
        assert!(err.to_string().contains("unknown record kind"));
    }
}
