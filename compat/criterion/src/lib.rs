//! Offline, std-only stand-in for the subset of the `criterion` benchmarking
//! API this workspace uses: `Criterion`, benchmark groups, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//!
//! The harness is intentionally simple: each benchmark is warmed up briefly
//! and then timed over a fixed wall-clock budget; the mean, minimum and
//! iteration count are printed in a `name ... time: [..]` line similar to
//! criterion's. There is no statistical analysis or HTML report — the goal is
//! that `cargo bench` runs offline and prints comparable per-iteration
//! timings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    min_ns: f64,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            iterations: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly within the configured budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a few iterations, also used to size the batches.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < self.budget / 10 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() > self.budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut min_ns = f64::INFINITY;
        while total < self.budget {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            min_ns = min_ns.min(elapsed.as_nanos() as f64);
            total += elapsed;
            iterations += 1;
            // Never spin forever on sub-microsecond routines.
            if iterations >= 1_000_000 {
                break;
            }
        }
        self.iterations = iterations;
        self.mean_ns = if iterations > 0 {
            total.as_nanos() as f64 / iterations as f64
        } else {
            per_iter
        };
        self.min_ns = if min_ns.is_finite() { min_ns } else { per_iter };
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(full_name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(budget);
    f(&mut bencher);
    println!(
        "{:<60} time: [min {} / mean {}]  ({} iters)",
        full_name,
        format_ns(bencher.min_ns),
        format_ns(bencher.mean_ns),
        bencher.iterations
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, mut f: F) {
        run_one(&name.to_string(), self.budget, &mut f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the stand-in uses a time budget
    /// rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{id}", self.name), self.budget, &mut f);
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{id}", self.name), self.budget, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(42)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
