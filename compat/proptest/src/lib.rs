//! Offline, std-only stand-in for the subset of the `proptest` API this
//! workspace uses: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`any`], `prop_oneof!`, `ProptestConfig::with_cases` and the
//! `proptest!` / `prop_assert!` macros.
//!
//! Unlike real proptest there is **no shrinking**: each test simply runs the
//! configured number of cases with inputs drawn from a deterministic RNG
//! seeded from the test name and the case index, so failures are perfectly
//! reproducible across runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The RNG driving input generation (deterministic per test and case).
pub type TestRng = rand::rngs::StdRng;

/// Creates the deterministic RNG for one test case. Used by the `proptest!`
/// macro; not part of the public proptest API.
pub fn case_rng(test_name: &str, case: u64) -> TestRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Configuration accepted by `proptest!`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategy for "any value of `T`" (full-range integers).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// A boxed generator closure: one arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among several strategies with a common value type
/// (produced by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Builds a union from one generator closure per arm.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rand::Rng::gen_range(rng, 0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Uniformly picks one of the listed strategies for each generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let s = $arm;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

/// Asserts a condition inside a property (plain `assert!` here — the
/// stand-in has no shrinking phase to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body for the configured number of cases
/// with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut __proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, ProptestConfig, Strategy,
        TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=8, any::<u64>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(x in 3u32..=5, (n, _seed) in pair()) {
            prop_assert!((3..=5).contains(&x));
            prop_assert!((1..=8).contains(&n));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0usize..10).prop_map(|x| x * 2),
            (100usize..110).prop_map(|x| x),
        ]) {
            prop_assert!(v < 20 && v % 2 == 0 || (100usize..110).contains(&v));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = case_rng("t", 3).next_u64();
        let b = case_rng("t", 3).next_u64();
        let c = case_rng("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    fn case_rng(name: &str, case: u64) -> crate::TestRng {
        crate::case_rng(name, case)
    }
}
