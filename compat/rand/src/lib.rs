//! Offline, std-only stand-in for the subset of the `rand` crate API this
//! workspace uses: [`StdRng`](rngs::StdRng), [`SeedableRng`], and the
//! [`Rng`] / [`seq::SliceRandom`] methods `gen_range`, `gen_bool` and
//! `shuffle`.
//!
//! The container this repository builds in has no registry access, so the
//! real `rand` crate cannot be fetched. The generator here is
//! xoshiro256\*\* seeded via SplitMix64 — a high-quality, deterministic PRNG.
//! Streams are **not** bit-compatible with upstream `rand`; every consumer in
//! this workspace only relies on determinism per seed, which this crate
//! provides.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A scalar type [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self {
                if inclusive {
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng() as $t;
                    }
                    lo + (rng() % (span + 1)) as $t
                } else {
                    let span = (hi - lo) as u64;
                    lo + (rng() % span) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_in(lo: Self, hi: Self, _inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self {
        lo + unit_f64(rng()) * (hi - lo)
    }
}

/// A range usable as the argument of [`Rng::gen_range`], producing values of
/// type `T`. The blanket impls over [`SampleUniform`] mirror rand's design so
/// integer-literal inference flows from the use site into the range type.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut || self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically derived from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Deterministic per seed, `Clone`-able (clones continue the same
    /// stream), and cheap: one step is a handful of ALU operations with no
    /// heap activity.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure for
            // the xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 items should move");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(4);
        // Both a direct and a reborrowed reference must compile.
        let _ = takes_impl(&mut rng);
        let r = &mut rng;
        let _ = takes_impl(r);
    }
}
