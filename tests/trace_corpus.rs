//! Fuzz-style corpus for the streaming trace parser: a generated corpus of
//! malformed trace lines — bad JSON, non-exact integers, duplicate rounds,
//! missing `end` records, field-level violations — each asserting a
//! *specific* parse error from [`lb_workloads::ReadSource`]. The corpus is
//! built programmatically around a canonical writer-produced header, so it
//! tracks the format instead of bit-rotting against it.

use lb_core::discrete::RoundEvents;
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, ReadSource, RoundSource, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec, TraceWriter,
};
use std::io;

/// The embedded scenario: 40 rounds, so round tags 0..=39 are in bounds.
fn scenario() -> Scenario {
    Scenario {
        name: "trace_corpus".into(),
        seed: 3,
        rounds: 40,
        sample_every: 10,
        algorithm: AlgorithmSpec::Alg1,
        model: ModelSpec::Fos,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 16,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 4,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: Vec::new(),
        shards: 1,
        federation: 1,
    }
}

/// A cloneable in-memory sink: lets the test read back what the writer
/// streamed without sealing it (file-backed writers only publish on
/// `finish`, so an unsealed trace never appears on disk).
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The canonical header line, produced by the real writer.
fn header_line() -> String {
    let buf = SharedBuf::default();
    let writer = TraceWriter::new(buf.clone(), &scenario()).expect("writer starts");
    drop(writer); // header is written eagerly; the trace stays unsealed
    let bytes = buf.0.lock().expect("buffer lock").clone();
    let text = String::from_utf8(bytes).expect("header text");
    text.lines().next().expect("header line").to_string()
}

/// A well-formed round record carrying 2 events.
fn round_line(round: u64) -> String {
    format!(
        "{{\"kind\":\"round\",\"round\":{round},\"completions\":[[0,1]],\
         \"arrivals\":[[1,{},1]]}}",
        100 + round
    )
}

/// A well-formed end record.
fn end_line(rounds: u64, events: u64) -> String {
    format!("{{\"kind\":\"end\",\"rounds\":{rounds},\"events\":{events}}}")
}

/// Streams `lines` (newline-terminated) through a `ReadSource` and returns
/// the first error. Panics if the stream parses cleanly.
fn first_error(lines: &[String]) -> String {
    let text = lines.join("\n") + "\n";
    first_error_raw(text.into_bytes())
}

fn first_error_raw(bytes: Vec<u8>) -> String {
    let mut source = match ReadSource::new(io::Cursor::new(bytes)) {
        Ok(source) => source,
        Err(err) => return err,
    };
    let mut out = RoundEvents::default();
    loop {
        match source.next_round(&mut out) {
            Ok(Some(_)) => {}
            Ok(None) => panic!("malformed stream parsed cleanly"),
            Err(err) => return err,
        }
    }
}

#[test]
fn malformed_lines_raise_specific_errors() {
    let header = header_line();
    // (corpus entry, the mid-stream malformed line, expected error fragment)
    let corpus: Vec<(&str, String, &str)> = vec![
        (
            "bad JSON: truncated object",
            "{\"kind\":".to_string(),
            "expected '\"'",
        ),
        ("bad JSON: not an object", "42".to_string(), "expected '{'"),
        (
            "bad JSON: unterminated string",
            "{\"kind\":\"round".to_string(),
            "unterminated string",
        ),
        (
            "kind must lead",
            "{\"round\":1,\"kind\":\"round\",\"completions\":[],\"arrivals\":[]}".to_string(),
            "must lead with its \"kind\"",
        ),
        (
            "unknown kind",
            "{\"kind\":\"frame\"}".to_string(),
            "unknown record kind \"frame\"",
        ),
        (
            "non-exact integer: fraction",
            "{\"kind\":\"round\",\"round\":1.5,\"completions\":[],\"arrivals\":[]}".to_string(),
            "non-exact integer",
        ),
        (
            "non-exact integer: exponent",
            "{\"kind\":\"round\",\"round\":1e2,\"completions\":[],\"arrivals\":[]}".to_string(),
            "non-exact integer",
        ),
        (
            "non-exact integer: negative",
            "{\"kind\":\"round\",\"round\":3,\"completions\":[[0,-1]],\"arrivals\":[]}".to_string(),
            "non-negative exact integer",
        ),
        (
            "integer overflow",
            "{\"kind\":\"round\",\"round\":3,\"completions\":[],\
             \"arrivals\":[[0,99999999999999999999999999,1]]}"
                .to_string(),
            "integer out of range",
        ),
        (
            "zero arrival weight",
            "{\"kind\":\"round\",\"round\":3,\"completions\":[],\"arrivals\":[[0,9,0]]}"
                .to_string(),
            "arrival weight must be positive",
        ),
        (
            "malformed completion pair",
            "{\"kind\":\"round\",\"round\":3,\"completions\":[[0]],\"arrivals\":[]}".to_string(),
            "expected ','",
        ),
        (
            "duplicate field",
            "{\"kind\":\"round\",\"round\":3,\"round\":4,\"completions\":[],\"arrivals\":[]}"
                .to_string(),
            "duplicate field \"round\"",
        ),
        (
            "unknown field",
            "{\"kind\":\"round\",\"round\":3,\"jitter\":1,\"completions\":[],\"arrivals\":[]}"
                .to_string(),
            "unknown round-record field \"jitter\"",
        ),
        (
            "missing field",
            "{\"kind\":\"round\",\"round\":3,\"completions\":[]}".to_string(),
            "missing field \"arrivals\"",
        ),
        (
            "trailing content",
            format!("{} trailing", round_line(3)),
            "unexpected trailing content",
        ),
        (
            "header repeated mid-stream",
            header.clone(),
            "unexpected header record",
        ),
        (
            "round beyond the scenario",
            round_line(40),
            "beyond the scenario",
        ),
    ];
    for (name, bad_line, expect) in corpus {
        let err = first_error(&[header.clone(), round_line(0), bad_line]);
        assert!(
            err.contains(expect),
            "{name}: expected {expect:?} in {err:?}"
        );
        // Errors locate the offending line (header = 1, so the bad line is 3).
        assert!(err.contains("line 3"), "{name}: no line number in {err:?}");
    }
}

#[test]
fn ordering_violations_raise_specific_errors() {
    let header = header_line();
    let err = first_error(&[header.clone(), round_line(3), round_line(3)]);
    assert!(
        err.contains("strictly increasing"),
        "duplicate round: {err}"
    );
    let err = first_error(&[header.clone(), round_line(5), round_line(3)]);
    assert!(
        err.contains("strictly increasing"),
        "decreasing round: {err}"
    );
}

#[test]
fn end_record_violations_raise_specific_errors() {
    let header = header_line();

    // Missing end record entirely.
    let err = first_error(&[header.clone(), round_line(0), round_line(1)]);
    assert!(err.contains("without the end record"), "{err}");

    // Wrong declared totals.
    let err = first_error(&[
        header.clone(),
        round_line(0),
        round_line(1),
        end_line(2, 99),
    ]);
    assert!(err.contains("declares"), "{err}");

    // Malformed end record (missing a field).
    let err = first_error(&[
        header.clone(),
        round_line(0),
        "{\"kind\":\"end\",\"rounds\":1}".to_string(),
    ]);
    assert!(err.contains("missing field \"events\""), "{err}");

    // Torn final line (no trailing newline mid-record).
    let mut bytes = (header.clone() + "\n" + &round_line(0) + "\n").into_bytes();
    bytes.extend_from_slice(b"{\"kind\":\"rou");
    let err = first_error_raw(bytes);
    assert!(err.contains("torn line"), "{err}");
}

#[test]
fn content_after_the_end_record_is_rejected() {
    let header = header_line();
    let text = [
        header,
        round_line(0),
        round_line(1),
        end_line(2, 4),
        round_line(2),
    ]
    .join("\n")
        + "\n";
    let mut source = ReadSource::new(io::Cursor::new(text.into_bytes())).expect("header parses");
    let mut out = RoundEvents::default();
    assert_eq!(source.next_round(&mut out).unwrap(), Some(0));
    assert_eq!(source.next_round(&mut out).unwrap(), Some(1));
    // The end record seals the stream cleanly…
    assert_eq!(source.next_round(&mut out).unwrap(), None);
    // …but the already-buffered garbage after it is an error on the next pull.
    let err = source.next_round(&mut out).expect_err("trailing content");
    assert!(err.contains("after the end record"), "{err}");
}

#[test]
fn a_clean_corpus_baseline_parses() {
    // The corpus helpers themselves must form a valid stream — otherwise
    // every negative assertion above is vacuous.
    let text = [header_line(), round_line(0), round_line(7), end_line(2, 4)].join("\n") + "\n";
    let mut source = ReadSource::new(io::Cursor::new(text.into_bytes())).expect("header parses");
    let mut out = RoundEvents::default();
    assert_eq!(source.next_round(&mut out).unwrap(), Some(0));
    assert_eq!(out.completions.len() + out.arrivals.len(), 2);
    assert_eq!(source.next_round(&mut out).unwrap(), Some(7));
    assert_eq!(source.next_round(&mut out).unwrap(), None, "sealed cleanly");
    assert_eq!(source.scenario(), &scenario());
}
