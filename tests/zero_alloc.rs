//! Counting-allocator proof of the zero-allocation hot loop.
//!
//! Installs a global allocator that counts every `alloc`/`realloc`, warms an
//! engine up (so lazily grown buffers — heaps, ring buffers, delivery
//! scratch — reach their steady-state capacity), then demands that further
//! rounds perform **no heap allocations at all**: the acceptance criterion
//! of the buffer-reuse refactor.
//!
//! Everything runs inside a single `#[test]` so no concurrent test can
//! pollute the counter.

use lb_analysis::Json;
use lb_core::continuous::{ContinuousRunner, DimensionExchange, Fos};
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::ingest::merge::MergeSession;
use lb_core::ingest::{self, IngestSession};
use lb_core::snapshot::{self, Snapshot};
use lb_core::{InitialLoad, ShardedExecutor, Speeds, Task, TaskId};
use lb_graph::{generators, AlphaScheme, Graph};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter update has
// no safety impact.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `warmup` rounds, then asserts the next `measure` rounds allocate
/// nothing.
fn assert_zero_alloc_steady_state(
    label: &str,
    warmup: usize,
    measure: usize,
    step: &mut dyn FnMut(),
) {
    for _ in 0..warmup {
        step();
    }
    let before = allocations();
    for _ in 0..measure {
        step();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{label}: {} allocation(s) in {measure} steady-state rounds",
        after - before
    );
}

fn workload(n: usize, d: u64) -> (Speeds, InitialLoad) {
    let speeds = Speeds::uniform(n);
    let mut counts = vec![d; n];
    counts[0] += 8 * n as u64;
    (speeds, InitialLoad::from_token_counts(counts))
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    let graph: Arc<Graph> = Arc::new(generators::hypercube(8).expect("hypercube builds"));
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let (speeds, initial) = workload(n, d);

    // Continuous runner with the FOS kernel.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut runner = ContinuousRunner::new(fos, initial.load_vector_f64());
    assert_zero_alloc_steady_state("continuous FOS runner", 50, 50, &mut || {
        runner.step();
    });

    // Continuous runner with the dimension-exchange kernel (matching-based).
    let de = DimensionExchange::with_greedy_coloring(Arc::clone(&graph), &speeds)
        .expect("DE constructs");
    let mut runner = ContinuousRunner::new(de, initial.load_vector_f64());
    assert_zero_alloc_steady_state("continuous DE runner", 50, 50, &mut || {
        runner.step();
    });

    // Algorithm 1 across all three task pickers (ring buffer + both heaps).
    for picker in [
        TaskPicker::Fifo,
        TaskPicker::LargestFirst,
        TaskPicker::SmallestFirst,
    ] {
        let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
            .expect("FOS constructs");
        let mut alg1 =
            FlowImitation::new(fos, &initial, speeds.clone(), picker).expect("dimensions agree");
        assert_zero_alloc_steady_state(
            &format!("FlowImitation({picker:?})"),
            400,
            100,
            &mut || alg1.step(),
        );
    }

    // Algorithm 2 (randomized rounding).
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg2 =
        RandomizedImitation::new(fos, &initial, speeds.clone(), 42).expect("dimensions agree");
    assert_zero_alloc_steady_state("RandomizedImitation", 400, 100, &mut || alg2.step());

    // Dynamic workloads: with arrivals and completions applied between
    // rounds, the *step itself* must still allocate nothing. Only event
    // application (queue growth, delivery of new tasks) may touch the heap —
    // the contract of `DynamicBalancer::apply_events`.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let mut events = RoundEvents::default();
    let mut next_id = initial.task_count() as u64;
    let mut dynamic_round = |alg1: &mut FlowImitation<Fos>, round: usize, measured: bool| {
        // A deterministic arrival/completion mix: 4 unit tasks arrive on
        // rotating nodes, 4 units complete elsewhere — sustained load with a
        // steady total, no RNG needed.
        events.clear();
        for k in 0..4u64 {
            events
                .completions
                .push(((round * 13 + 7 * k as usize) % n, 1));
        }
        for k in 0..4u64 {
            let task = Task::new(TaskId(next_id), 1);
            next_id += 1;
            events.arrivals.push(((round * 31 + k as usize) % n, task));
        }
        alg1.apply_events(&events).expect("events apply");
        if measured {
            let before = allocations();
            alg1.step();
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "FlowImitation step allocated under dynamic arrivals (round {round})"
            );
        } else {
            alg1.step();
        }
    };
    for round in 0..400 {
        dynamic_round(&mut alg1, round, false);
    }
    for round in 400..500 {
        dynamic_round(&mut alg1, round, true);
    }
    assert!(alg1.arrived_weight() >= 4 * 500);
    assert!(alg1.completed_weight() > 0);

    // Checkpointed runs: capturing and atomically publishing a full snapshot
    // at the cadence round allocates (it builds the document and stages a
    // temp file), but every round BETWEEN checkpoints must stay heap-free.
    // This pins the driver's `--checkpoint-every` contract: `capture` is a
    // read-only walk that must not steal, shrink, or lazily re-grow any
    // warmed engine buffer, and the atomic write must leave no allocation
    // debt behind for later rounds to pay.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let ckpt =
        std::env::temp_dir().join(format!("lb_zero_alloc_ckpt_{}.jsonl", std::process::id()));
    let header = Json::obj([("name", Json::Str("zero_alloc".into()))]);
    let publish = |alg1: &FlowImitation<Fos>, round: u64| {
        let snap = Snapshot {
            scenario: header.clone(),
            driver: Json::Null,
            round,
            engine: alg1.capture(),
        };
        snapshot::write_atomic(&ckpt, &snap).expect("checkpoint publishes");
    };
    for round in 0..400u64 {
        alg1.step();
        if round % 10 == 9 {
            publish(&alg1, round + 1);
        }
    }
    for round in 400..500u64 {
        let before = allocations();
        alg1.step();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "checkpointed run: round {round} allocated between checkpoints"
        );
        if round % 10 == 9 {
            // The cadence round itself: the snapshot capture + write is the
            // one sanctioned allocator, and it runs outside the measurement.
            publish(&alg1, round + 1);
        }
    }
    std::fs::remove_file(&ckpt).ok();

    // Sharded rounds (shards > 1): the persistent worker pool, pre-sized
    // shard plan and warmed outboxes must keep `step_sharded` heap-free too.
    // Workers also count against the global allocator, so this covers the
    // whole two-phase round, not just the coordinating thread.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let mut exec = ShardedExecutor::new(3);
    assert_zero_alloc_steady_state("FlowImitation sharded(3)", 400, 100, &mut || {
        alg1.step_sharded(&mut exec)
    });

    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg2 =
        RandomizedImitation::new(fos, &initial, speeds.clone(), 42).expect("dimensions agree");
    let mut exec = ShardedExecutor::new(3);
    assert_zero_alloc_steady_state("RandomizedImitation sharded(3)", 400, 100, &mut || {
        alg2.step_sharded(&mut exec)
    });

    // Channel ingestion: a producer thread streams deterministic batches
    // through the bounded SPSC channel while the engine drains one batch
    // between rounds. The allocator counter is global, so the measured
    // window covers BOTH threads: once buffers circulate (the producer draws
    // recycled ones via `buffer()`), a steady-state round — produce, send,
    // receive, apply, recycle, step — must allocate nothing anywhere. The
    // producer sends more batches than the measured run consumes, so it is
    // parked on the bounded queue (not exiting) when measurement ends.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let (mut tx, rx) = ingest::bounded(8);
    let nodes = n;
    let mut next_id = initial.task_count() as u64;
    let producer = std::thread::spawn(move || {
        for round in 0..700u64 {
            let mut batch = tx.buffer();
            for k in 0..4u64 {
                batch
                    .completions
                    .push(((round as usize * 13 + 7 * k as usize) % nodes, 1));
            }
            for k in 0..4u64 {
                let task = Task::new(TaskId(next_id), 1);
                next_id += 1;
                batch
                    .arrivals
                    .push(((round as usize * 31 + k as usize) % nodes, task));
            }
            if tx.send(round, batch).is_err() {
                return; // consumer done; the test is over
            }
        }
    });
    let mut session = IngestSession::new(rx);
    let mut round = 0u64;
    assert_zero_alloc_steady_state("FlowImitation channel ingestion", 400, 100, &mut || {
        session
            .apply_round(round, &mut alg1)
            .expect("batch applies");
        round += 1;
        alg1.step();
    });
    assert_eq!(session.report().arrived_tasks, 4 * 500);
    assert!(alg1.completed_weight() > 0);
    drop(session); // hang up; the blocked producer's next send fails
    producer.join().expect("producer exits cleanly");

    // Merged ingestion (2 feeds): two producer threads each stream their own
    // half of the round's events over their own bounded channel, and the
    // MergeSession coalesces the halves between rounds. The counter is
    // global, so the measured window covers all three threads: once the
    // session's scratch and every circulating buffer are warm, a steady-state
    // round — two produces, two sends, k-way coalesce, apply, recycle, step —
    // must allocate nothing anywhere. Feed 0 carries the completions and the
    // even arrivals, feed 1 the odd arrivals (disjoint task ids), keeping the
    // total load steady.
    let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
        .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let mut consumers = Vec::new();
    let mut merge_producers = Vec::new();
    let base_id = initial.task_count() as u64;
    for feed in 0..2u64 {
        let (mut tx, rx) = ingest::bounded(8);
        consumers.push(rx);
        let nodes = n;
        merge_producers.push(std::thread::spawn(move || {
            for round in 0..700u64 {
                let mut batch = tx.buffer();
                if feed == 0 {
                    for k in 0..4u64 {
                        batch
                            .completions
                            .push(((round as usize * 13 + 7 * k as usize) % nodes, 1));
                    }
                }
                for k in 0..2u64 {
                    let id = base_id + round * 4 + 2 * k + feed;
                    let task = Task::new(TaskId(id), 1);
                    batch.arrivals.push((
                        (round as usize * 31 + (2 * k + feed) as usize) % nodes,
                        task,
                    ));
                }
                if tx.send(round, batch).is_err() {
                    return; // consumer done; the test is over
                }
            }
        }));
    }
    let mut session = MergeSession::new(consumers);
    let mut round = 0u64;
    assert_zero_alloc_steady_state(
        "FlowImitation merged ingestion (2 feeds)",
        400,
        100,
        &mut || {
            session
                .apply_round(round, &mut alg1)
                .expect("merged batch applies");
            round += 1;
            alg1.step();
        },
    );
    assert_eq!(session.report().arrived_tasks, 4 * 500);
    assert!(session.report().completed_weight > 0);
    let reports = session.feed_reports();
    assert_eq!(reports.len(), 2);
    assert!(
        reports.iter().all(|r| r.batches == 500),
        "both feeds fed every measured round"
    );
    drop(session); // hang up; both blocked producers' next sends fail
    for producer in merge_producers {
        producer.join().expect("merge producer exits cleanly");
    }
}
