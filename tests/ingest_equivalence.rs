//! The async-ingestion contract, end to end: for the same scenario and seed,
//! the synchronous path, the channel path and a recorded-then-replayed trace
//! all produce **byte-identical** result JSON — for every engine combo
//! (alg1/alg2 × fos/sos), with churn in the stream, and for every shard
//! count (the acceptance shard counts {1, 4} are pinned here; CI diffs the
//! same artefacts via `lb run --record` / `lb replay`).

use lb_bench::dynamic::{Producer, Session};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec, Trace,
};
use std::path::PathBuf;

/// The four engine combos a scenario can request.
const COMBOS: [(AlgorithmSpec, ModelSpec); 4] = [
    (AlgorithmSpec::Alg1, ModelSpec::Fos),
    (AlgorithmSpec::Alg1, ModelSpec::Sos),
    (AlgorithmSpec::Alg2, ModelSpec::Fos),
    (AlgorithmSpec::Alg2, ModelSpec::Sos),
];

/// A sustained-load scenario with both kinds of churn in the stream.
fn churny_scenario(algorithm: AlgorithmSpec, model: ModelSpec) -> Scenario {
    Scenario {
        name: "ingest_equivalence".into(),
        seed: 1234,
        rounds: 60,
        sample_every: 15,
        algorithm,
        model,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 36,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 6,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1, // alg2-compatible
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: vec![
            ChurnEvent {
                round: 20,
                kind: ChurnKind::Rewire { seed: 7 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 8,
                },
            },
        ],
        shards: 1,
        federation: 1,
    }
}

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lb_ingest_equivalence_{tag}.trace.jsonl"))
}

/// The acceptance criterion: sync-driven, channel-driven and trace-replayed
/// runs emit byte-identical result JSON at shards ∈ {1, 4}, for all four
/// engine combos, with churn in the stream.
#[test]
fn sync_channel_and_replay_are_byte_identical() {
    for (algorithm, model) in COMBOS {
        let scenario = churny_scenario(algorithm, model);
        let tag = format!("{}_{}", scenario.algorithm.as_str(), model.as_str());
        let path = temp_trace(&tag);

        for shards in [1usize, 4] {
            // Sync run, recording the stream as it goes.
            let sync = Session::from_scenario(&scenario)
                .shards(shards)
                .record(path.clone())
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} sync: {e}"));
            let sync_doc = sync.to_json().render_pretty();

            // Channel run: same batches through the SPSC channel.
            let channel = Session::from_scenario(&scenario)
                .shards(shards)
                .producer(Producer::Channel { capacity: 3 })
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} channel: {e}"));
            assert_eq!(
                sync_doc,
                channel.to_json().render_pretty(),
                "{tag} shards={shards}: channel diverged from sync"
            );

            // Replay: the recorded trace drives the engine through the
            // channel; the header pinned the effective seed and shard count.
            let trace = Trace::load(&path).expect("trace loads");
            assert_eq!(trace.scenario.shards, shards, "effective shards recorded");
            let replayed = Session::from_trace(trace.clone())
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} replay: {e}"));
            assert_eq!(
                sync_doc,
                replayed.to_json().render_pretty(),
                "{tag} shards={shards}: replay diverged from sync"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Cross-shard replay: a trace recorded sequentially replays bit-identically
/// under a shard override, and vice versa — the trajectory depends only on
/// the recorded stream, never on the shard count.
#[test]
fn trace_replay_is_shard_invariant() {
    let scenario = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    let path = temp_trace("shard_invariance");
    let sequential = Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("records");
    let trace = Trace::load(&path).expect("trace loads");
    for shards in [2usize, 4] {
        let replayed = Session::from_trace(trace.clone())
            .shards(shards)
            .run(|_| {})
            .expect("replays");
        assert_eq!(
            sequential.trajectory, replayed.trajectory,
            "shards={shards}: trajectory changed under shard override"
        );
        assert_eq!(replayed.scenario.shards, shards, "override recorded");
    }
    std::fs::remove_file(&path).ok();
}

/// A truncated trace must fail to load — never silently replay a prefix.
#[test]
fn truncated_traces_fail_loudly() {
    let scenario = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    let path = temp_trace("truncation");
    Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("records");
    let text = std::fs::read_to_string(&path).expect("trace exists");
    let lines: Vec<&str> = text.lines().collect();
    let truncated = lines[..lines.len() - 1].join("\n");
    let err = Trace::parse(&truncated).expect_err("truncated trace rejected");
    assert!(err.contains("end record"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// A trace shorter than the run is legal (the producer hangs up, remaining
/// rounds see no events) — the engine keeps balancing the load it has, and
/// the run still completes deterministically.
#[test]
fn short_traces_drain_and_keep_balancing() {
    let mut scenario = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    scenario.churn.clear();
    scenario.completions = ServiceSpec::None;
    let path = temp_trace("short");
    Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("records");

    // Keep only the first half of the recorded rounds.
    let mut trace = Trace::load(&path).expect("trace loads");
    trace.rounds.truncate(trace.rounds.len() / 2);
    let last_recorded = trace.rounds.last().expect("nonempty").round;
    let a = Session::from_trace(trace.clone())
        .run(|_| {})
        .expect("replays");
    let b = Session::from_trace(trace).run(|_| {}).expect("replays");
    assert_eq!(a.trajectory, b.trajectory, "short replay is deterministic");
    assert!(
        (last_recorded as usize) < scenario.rounds,
        "the trace really is shorter than the run"
    );
    // Arrived weight reflects only the replayed half.
    let full = Session::from_scenario(&scenario)
        .run(|_| {})
        .expect("full run");
    assert!(
        a.last().arrived_weight < full.last().arrived_weight,
        "half the stream arrived less weight than the full stream"
    );
    std::fs::remove_file(&path).ok();
}
