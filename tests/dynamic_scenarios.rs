//! End-to-end determinism of the dynamic scenario subsystem: the same
//! scenario JSON and seed must produce **bit-identical** trajectories and
//! result documents — the reproducibility contract of `lb run` (acceptance
//! criterion of the dynamic-workload PR).

use lb_bench::dynamic::{RoundSample, Session};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
};

fn example_path() -> String {
    format!(
        "{}/../../examples/scenario_poisson.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn load_example() -> Scenario {
    let text = std::fs::read_to_string(example_path()).expect("example scenario file exists");
    Scenario::parse(&text).expect("example scenario parses")
}

#[test]
fn example_scenario_round_trips_through_json() {
    let scenario = load_example();
    let rendered = scenario.render_pretty();
    let reparsed = Scenario::parse(&rendered).expect("re-parses");
    assert_eq!(reparsed, scenario);
}

#[test]
fn example_scenario_is_bit_identical_across_runs() {
    // `lb run examples/scenario_poisson.json --seed 42` twice: the rendered
    // result documents must agree byte for byte.
    let scenario = load_example();
    let a = Session::from_scenario(&scenario)
        .seed(42)
        .run(|_| {})
        .expect("runs");
    let b = Session::from_scenario(&scenario)
        .seed(42)
        .run(|_| {})
        .expect("runs");
    assert_eq!(
        a.to_json().render_pretty(),
        b.to_json().render_pretty(),
        "result JSON must be bit-identical for a fixed seed"
    );
    // And it is a real dynamic run: work arrived and completed.
    assert!(a.last().arrived_weight > 0);
    assert!(a.last().completed_weight > 0);
    assert_eq!(a.last().round, scenario.rounds);
}

#[test]
fn trajectories_differ_across_seeds() {
    let scenario = load_example();
    let a = Session::from_scenario(&scenario)
        .seed(1)
        .run(|_| {})
        .expect("runs");
    let b = Session::from_scenario(&scenario)
        .seed(2)
        .run(|_| {})
        .expect("runs");
    assert_ne!(a.trajectory, b.trajectory);
}

fn churny_scenario(algorithm: AlgorithmSpec) -> Scenario {
    Scenario {
        name: "churny".into(),
        seed: 11,
        rounds: 120,
        sample_every: 15,
        algorithm,
        model: ModelSpec::Fos,
        topology: TopologySpec {
            family: "expander".into(),
            target_n: 64,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::UniformRandom,
            tokens_per_node: 6,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Bursty {
            period: 25,
            burst: 40,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: vec![
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Rewire { seed: 3 },
            },
            ChurnEvent {
                round: 80,
                kind: ChurnKind::Resize {
                    target_n: 48,
                    seed: 4,
                },
            },
        ],
        shards: 1,
        federation: 1,
    }
}

#[test]
fn churn_scenarios_are_deterministic_for_both_algorithms() {
    for algorithm in [AlgorithmSpec::Alg1, AlgorithmSpec::Alg2] {
        let scenario = churny_scenario(algorithm);
        let a = Session::from_scenario(&scenario).run(|_| {}).expect("runs");
        let b = Session::from_scenario(&scenario).run(|_| {}).expect("runs");
        assert_eq!(a.trajectory, b.trajectory, "{algorithm:?}");
        // The resize took effect.
        assert_eq!(a.last().nodes, 48, "{algorithm:?}");
    }
}

#[test]
fn streamed_samples_match_the_recorded_trajectory() {
    let scenario = load_example();
    let mut streamed: Vec<RoundSample> = Vec::new();
    let outcome = Session::from_scenario(&scenario)
        .seed(42)
        .run(|s| streamed.push(s.clone()))
        .expect("runs");
    assert_eq!(streamed, outcome.trajectory);
    // Samples: round 0, every 24 rounds, and the final round.
    assert_eq!(streamed[0].round, 0);
    assert_eq!(streamed.last().unwrap().round, scenario.rounds);
}

#[test]
fn sustained_load_keeps_discrepancy_in_the_od_regime() {
    // The headline property the dynamic workload class demonstrates: with
    // arrivals balanced by service capacity, the discrepancy does not drift
    // upward over time even though the workload never drains.
    let scenario = load_example();
    let outcome = Session::from_scenario(&scenario)
        .seed(42)
        .run(|_| {})
        .expect("runs");
    let d = 8.0; // hypercube(256) has degree 8
    for sample in &outcome.trajectory {
        if sample.round >= scenario.rounds / 2 {
            assert!(
                sample.max_min <= 8.0 * d,
                "round {}: max_min {} left the O(d) regime",
                sample.round,
                sample.max_min
            );
        }
    }
}
