//! The multi-producer ingestion contract, end to end: for the same scenario
//! and seed, the synchronous path, the single channel, the k-way merge over
//! N feeds and the byte-stream sources (file tail, framed reader) all
//! produce **byte-identical** result JSON — for every engine combo
//! (alg1/alg2 × fos/sos), with churn in the stream, at the acceptance shard
//! counts {1, 4}. A session-level property test additionally checks that
//! *any* partition of the event stream across 1..=4 feeds, sent under any
//! (seeded) interleaving, merges back to the sync-identical trajectory.

use lb_bench::dynamic::{Producer, Session, DEFAULT_CHANNEL_CAPACITY};
use lb_core::continuous::Fos;
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::ingest::merge::MergeSession;
use lb_core::ingest::{self, EventProducer};
use lb_core::{InitialLoad, Speeds};
use lb_graph::AlphaScheme;
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, ReadSource,
    Scenario, ScenarioEvents, ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec, TraceSource,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// The four engine combos a scenario can request.
const COMBOS: [(AlgorithmSpec, ModelSpec); 4] = [
    (AlgorithmSpec::Alg1, ModelSpec::Fos),
    (AlgorithmSpec::Alg1, ModelSpec::Sos),
    (AlgorithmSpec::Alg2, ModelSpec::Fos),
    (AlgorithmSpec::Alg2, ModelSpec::Sos),
];

/// A sustained-load scenario with both kinds of churn in the stream.
fn churny_scenario(algorithm: AlgorithmSpec, model: ModelSpec) -> Scenario {
    Scenario {
        name: "merge_equivalence".into(),
        seed: 4321,
        rounds: 60,
        sample_every: 15,
        algorithm,
        model,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 36,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 6,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1, // alg2-compatible
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: vec![
            ChurnEvent {
                round: 20,
                kind: ChurnKind::Rewire { seed: 7 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 8,
                },
            },
        ],
        shards: 1,
        federation: 1,
    }
}

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lb_merge_equivalence_{tag}.trace.jsonl"))
}

/// The acceptance criterion: sync-driven, single-channel, 2-feed-merged and
/// file-tailed runs all emit byte-identical result JSON at shards ∈ {1, 4},
/// for all four engine combos, with churn in the stream. The framed-reader
/// source rides along as the pipe/socket stand-in.
#[test]
fn sync_channel_merge_and_tail_are_byte_identical() {
    for (algorithm, model) in COMBOS {
        let scenario = churny_scenario(algorithm, model);
        let tag = format!("{}_{}", scenario.algorithm.as_str(), model.as_str());
        let path = temp_trace(&tag);

        for shards in [1usize, 4] {
            // Sync run, recording the stream for the byte-stream sources.
            let sync = Session::from_scenario(&scenario)
                .shards(shards)
                .record(path.clone())
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} sync: {e}"));
            let sync_doc = sync.to_json().render_pretty();

            // Single channel.
            let channel = Session::from_scenario(&scenario)
                .shards(shards)
                .producer(Producer::Channel {
                    capacity: DEFAULT_CHANNEL_CAPACITY,
                })
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} channel: {e}"));
            assert_eq!(
                sync_doc,
                channel.to_json().render_pretty(),
                "{tag} shards={shards}: channel diverged from sync"
            );

            // 2-feed merge.
            let merged = Session::from_scenario(&scenario)
                .shards(shards)
                .producer(Producer::Merge {
                    feeds: 2,
                    capacity: 3,
                })
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} merge: {e}"));
            assert_eq!(
                sync_doc,
                merged.to_json().render_pretty(),
                "{tag} shards={shards}: 2-feed merge diverged from sync"
            );

            // File tail over the recorded trace.
            let source = TraceSource::open(&path)
                .unwrap_or_else(|e| panic!("{tag} shards={shards} tail open: {e}"));
            let tailed = Session::from_stream(Box::new(source))
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} tail: {e}"));
            assert_eq!(
                sync_doc,
                tailed.to_json().render_pretty(),
                "{tag} shards={shards}: file tail diverged from sync"
            );

            // Framed byte-stream reader over the same bytes.
            let bytes = std::fs::read(&path).expect("trace bytes");
            let source = ReadSource::new(std::io::Cursor::new(bytes))
                .unwrap_or_else(|e| panic!("{tag} shards={shards} stream open: {e}"));
            let streamed = Session::from_stream(Box::new(source))
                .run(|_| {})
                .unwrap_or_else(|e| panic!("{tag} shards={shards} stream: {e}"));
            assert_eq!(
                sync_doc,
                streamed.to_json().render_pretty(),
                "{tag} shards={shards}: framed stream diverged from sync"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Wider feed counts on one combo: a 1-feed merge is exactly the channel
/// path, and 3/4-feed merges still reconstruct every batch.
#[test]
fn merge_is_byte_identical_across_feed_counts() {
    let scenario = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    let sync = Session::from_scenario(&scenario)
        .run(|_| {})
        .expect("sync runs");
    let sync_doc = sync.to_json().render_pretty();
    for shards in [1usize, 4] {
        for feeds in [1usize, 3, 4] {
            let merged = Session::from_scenario(&scenario)
                .shards(shards)
                .producer(Producer::Merge { feeds, capacity: 2 })
                .run(|_| {})
                .unwrap_or_else(|e| panic!("feeds={feeds} shards={shards}: {e}"));
            if shards == 1 {
                assert_eq!(
                    sync_doc,
                    merged.to_json().render_pretty(),
                    "feeds={feeds}: merge diverged from sync"
                );
            } else {
                assert_eq!(
                    sync.trajectory, merged.trajectory,
                    "feeds={feeds} shards={shards}: trajectory diverged"
                );
            }
        }
    }
}

/// A live tail: the trace file grows *while* the replay runs (written line
/// by line on a side thread, the way `lb serve-trace --out` drips it), and
/// the result is still byte-identical to the recorded run.
#[test]
fn growing_file_tail_replays_byte_identically() {
    let mut scenario = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    scenario.rounds = 40;
    scenario.churn.clear();
    let recorded_path = temp_trace("live_tail_recorded");
    let grown_path = temp_trace("live_tail_grown");
    let recorded = Session::from_scenario(&scenario)
        .record(recorded_path.clone())
        .run(|_| {})
        .expect("records");

    std::fs::write(&grown_path, "").expect("creates the tailed file");
    let text = std::fs::read_to_string(&recorded_path).expect("trace text");
    let writer_path = grown_path.clone();
    let writer = std::thread::spawn(move || {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&writer_path)
            .unwrap();
        for line in text.lines() {
            writeln!(file, "{line}").unwrap();
            file.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    });
    let source = TraceSource::open_with(
        &grown_path,
        std::time::Duration::from_secs(30),
        std::time::Duration::from_millis(1),
    )
    .expect("header arrives");
    let tailed = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect("tail replays");
    writer.join().unwrap();
    assert_eq!(
        recorded.to_json().render_pretty(),
        tailed.to_json().render_pretty(),
        "live tail diverged from the recorded run"
    );
    std::fs::remove_file(&recorded_path).ok();
    std::fs::remove_file(&grown_path).ok();
}

/// One engine pair for the partition property: `reference` consumes the
/// original per-round batches, `merged` the feed-partitioned ones.
enum Engines {
    Alg1(FlowImitation<Fos>, FlowImitation<Fos>),
    Alg2(RandomizedImitation<Fos>, RandomizedImitation<Fos>),
}

impl Engines {
    fn build(algorithm: AlgorithmSpec, n: usize) -> (Self, Speeds) {
        let graph = lb_graph::generators::torus(6, 6).expect("torus builds");
        assert_eq!(graph.node_count(), n);
        let speeds = Speeds::uniform(n);
        let initial = InitialLoad::single_source(n, 0, (n * 8) as u64);
        let make_fos = |g: lb_graph::Graph| {
            Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs")
        };
        let engines = match algorithm {
            AlgorithmSpec::Alg1 => Engines::Alg1(
                FlowImitation::new(
                    make_fos(graph.clone()),
                    &initial,
                    speeds.clone(),
                    TaskPicker::Fifo,
                )
                .expect("dimensions agree"),
                FlowImitation::new(make_fos(graph), &initial, speeds.clone(), TaskPicker::Fifo)
                    .expect("dimensions agree"),
            ),
            AlgorithmSpec::Alg2 => Engines::Alg2(
                RandomizedImitation::new(make_fos(graph.clone()), &initial, speeds.clone(), 99)
                    .expect("dimensions agree"),
                RandomizedImitation::new(make_fos(graph), &initial, speeds.clone(), 99)
                    .expect("dimensions agree"),
            ),
        };
        (engines, speeds)
    }

    fn split(&mut self) -> (&mut dyn DynamicBalancer, &mut dyn DynamicBalancer) {
        match self {
            Engines::Alg1(reference, merged) => (reference, merged),
            Engines::Alg2(reference, merged) => (reference, merged),
        }
    }

    fn step_both(&mut self) {
        match self {
            Engines::Alg1(reference, merged) => {
                reference.step();
                merged.step();
            }
            Engines::Alg2(reference, merged) => {
                reference.step();
                merged.step();
            }
        }
    }

    fn loads(&self) -> (Vec<f64>, Vec<f64>) {
        match self {
            Engines::Alg1(reference, merged) => (reference.loads(), merged.loads()),
            Engines::Alg2(reference, merged) => (reference.loads(), merged.loads()),
        }
    }
}

/// The partition property: ANY assignment of a unit-weight event stream's
/// events to 1..=4 feeds, with the feeds' batches sent in ANY (seeded)
/// interleaving, merges back to the sync-identical trajectory. Event
/// application is additive and unit tasks are interchangeable weight-wise,
/// so per-round coalescing order cannot show up in the loads.
#[test]
fn any_partition_under_any_interleaving_merges_back() {
    let rounds = 40usize;
    let n = 36usize;
    let scenario = {
        let mut s = churny_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        s.churn.clear();
        s.rounds = rounds;
        s
    };
    let speeds = Speeds::uniform(n);

    for algorithm in [AlgorithmSpec::Alg1, AlgorithmSpec::Alg2] {
        for feeds in 1usize..=4 {
            for trial in 0..3u64 {
                let mut rng = StdRng::seed_from_u64(
                    0xFEED * (feeds as u64)
                        + 31 * trial
                        + u64::from(algorithm == AlgorithmSpec::Alg2),
                );

                // Materialise the stream once, partition every event to a
                // random feed, keeping per-feed round order.
                let mut stream = ScenarioEvents::new(&scenario, &speeds, (n * 8) as u64);
                let mut original: Vec<RoundEvents> = Vec::with_capacity(rounds);
                let mut per_feed: Vec<Vec<(u64, RoundEvents)>> = vec![Vec::new(); feeds];
                let mut batch = RoundEvents::default();
                for round in 0..rounds {
                    stream.fill_round(round, &mut batch);
                    let mut slices: Vec<RoundEvents> = vec![RoundEvents::default(); feeds];
                    for &(node, weight) in &batch.completions {
                        slices[rng.gen_range(0..feeds)]
                            .completions
                            .push((node, weight));
                    }
                    for &(node, task) in &batch.arrivals {
                        slices[rng.gen_range(0..feeds)].arrivals.push((node, task));
                    }
                    for (feed, slice) in slices.into_iter().enumerate() {
                        if !slice.is_empty() {
                            per_feed[feed].push((round as u64, slice));
                        }
                    }
                    original.push(batch.clone());
                }

                // The scheduler shim: send the feeds' batch sequences in a
                // seeded random interleaving (per-feed order preserved —
                // that is the SPSC contract — but cross-feed arrival order
                // fully shuffled). Capacities are sized so no send blocks.
                let mut producers: Vec<EventProducer> = Vec::new();
                let mut consumers = Vec::new();
                for feed_batches in &per_feed {
                    let (tx, rx) = ingest::bounded(feed_batches.len().max(1));
                    producers.push(tx);
                    consumers.push(rx);
                }
                let mut cursors = vec![0usize; feeds];
                loop {
                    let open: Vec<usize> = (0..feeds)
                        .filter(|&f| cursors[f] < per_feed[f].len())
                        .collect();
                    if open.is_empty() {
                        break;
                    }
                    let feed = open[rng.gen_range(0..open.len())];
                    let (round, slice) = per_feed[feed][cursors[feed]].clone();
                    cursors[feed] += 1;
                    producers[feed].send(round, slice).expect("consumer alive");
                }
                drop(producers);

                let (mut engines, _) = Engines::build(algorithm, n);
                let mut session = MergeSession::new(consumers);
                for (round, batch) in original.iter().enumerate() {
                    {
                        let (reference, merged) = engines.split();
                        if !batch.is_empty() {
                            reference.apply_events(batch).expect("reference applies");
                        }
                        session
                            .apply_round(round as u64, merged)
                            .expect("merged batch applies");
                    }
                    engines.step_both();
                    let (expect, got) = engines.loads();
                    assert_eq!(
                        expect, got,
                        "{algorithm:?} feeds={feeds} trial={trial} round={round}: \
                         merged trajectory diverged"
                    );
                }
                // One pull past the final round observes every hang-up
                // (feed end states are discovered lazily, on demand).
                let mut drain = RoundEvents::default();
                session
                    .fill_round(rounds as u64, &mut drain)
                    .expect("post-final drain");
                assert!(drain.is_empty(), "no events past the final round");
                assert!(session.ended(), "all feeds drained");
                let total_events: u64 = session.feed_reports().iter().map(|r| r.events).sum();
                let expect_events: u64 = original
                    .iter()
                    .map(|b| (b.arrivals.len() + b.completions.len()) as u64)
                    .sum();
                assert_eq!(
                    total_events, expect_events,
                    "no event lost in the partition"
                );
            }
        }
    }
}
