//! Fuzz-style corpus for the snapshot reader: a canonical writer-produced
//! snapshot (captured from a real checkpointed run, so it tracks the format
//! instead of bit-rotting against it) is mutated into every documented
//! failure shape — truncation, a flipped version, edited end-record totals,
//! non-exact integers, a mid-line torn write — and each mutation must map
//! to its *specific located* [`lb_core::snapshot::SnapshotError`] variant,
//! never a panic and never a silently-wrong resume.

use lb_bench::dynamic::Session;
use lb_core::snapshot::{self, Snapshot, SnapshotError, SNAPSHOT_VERSION};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, Scenario, ServiceSpec, SpeedSpec,
    TokenDistribution, TopologySpec,
};

/// The scenario behind the canonical snapshot: alg1 + SOS so the rendered
/// form carries every record kind — header, run, twin, history, alg1, one
/// queue line per node, end.
fn scenario() -> Scenario {
    Scenario {
        name: "snapshot_corpus".into(),
        seed: 11,
        rounds: 20,
        sample_every: 10,
        algorithm: AlgorithmSpec::Alg1,
        model: ModelSpec::Sos,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 16,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 4,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: Vec::new(),
        shards: 1,
        federation: 1,
    }
}

/// The canonical snapshot text, produced by the real checkpoint path (the
/// rotating file after a run with cadence 10 holds the round-20 capture).
fn canonical() -> String {
    let path = std::env::temp_dir().join(format!(
        "lb_snapshot_corpus_canonical_{}.jsonl",
        std::process::id()
    ));
    Session::from_scenario(&scenario())
        .checkpoint(path.clone(), 10)
        .run(|_| {})
        .expect("checkpointed run");
    let text = std::fs::read_to_string(&path).expect("snapshot text");
    std::fs::remove_file(&path).ok();
    text
}

fn parse_err(text: &str) -> SnapshotError {
    snapshot::parse(text).expect_err("the mutated snapshot must not parse")
}

/// Replaces line `lineno` (1-based) with `replacement`; `None` drops it.
fn edit_line(text: &str, lineno: usize, replacement: Option<&str>) -> String {
    let mut out = String::new();
    for (idx, line) in text.lines().enumerate() {
        if idx + 1 == lineno {
            if let Some(replacement) = replacement {
                out.push_str(replacement);
                out.push('\n');
            }
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn the_canonical_snapshot_parses_cleanly() {
    let text = canonical();
    let parsed = snapshot::parse(&text).expect("clean baseline");
    assert_eq!(parsed.round, 20);
    // 16 nodes, alg1: one queue line per node, plus run/twin/history/alg1.
    assert!(text.lines().count() > 16);
    // The reader round-trips what the writer produced, byte for byte.
    assert_eq!(snapshot::render(&parsed), text);
}

#[test]
fn a_truncated_snapshot_is_a_located_truncation_error() {
    let text = canonical();
    let lines: Vec<&str> = text.lines().collect();
    // Drop the end record: the reader must refuse to resume from a prefix.
    let unsealed: String = lines[..lines.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    match parse_err(&unsealed) {
        SnapshotError::Truncated { line, reason } => {
            assert_eq!(line, lines.len() - 1, "located at the last surviving line");
            assert!(reason.contains("without the end record"), "{reason}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    // An empty file is the degenerate truncation.
    match parse_err("") {
        SnapshotError::Truncated { line: 1, reason } => {
            assert!(reason.contains("empty"), "{reason}")
        }
        other => panic!("expected Truncated at line 1, got {other:?}"),
    }
}

#[test]
fn a_mid_line_torn_write_is_a_located_truncation_error() {
    let text = canonical();
    // Cut inside the final line: no trailing newline survives.
    let cut = text.len() - 7;
    let torn = &text[..cut];
    assert!(!torn.ends_with('\n'));
    match parse_err(torn) {
        SnapshotError::Truncated { line, reason } => {
            assert_eq!(line, text.lines().count(), "located at the torn line");
            assert!(reason.contains("torn line"), "{reason}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn a_flipped_version_is_a_version_error() {
    let text = canonical();
    let old = format!("\"version\":{SNAPSHOT_VERSION}");
    let new = format!("\"version\":{}", SNAPSHOT_VERSION + 1);
    let flipped = text.replacen(&old, &new, 1);
    assert_ne!(flipped, text, "the header carries the version literally");
    match parse_err(&flipped) {
        SnapshotError::Version { line: 1, found } => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected Version at line 1, got {other:?}"),
    }
    // And the Display form tells the operator both versions.
    let message = parse_err(&flipped).to_string();
    assert!(
        message.contains("unsupported snapshot version"),
        "{message}"
    );
}

#[test]
fn edited_end_totals_are_a_located_corrupt_error() {
    let text = canonical();
    let line_count = text.lines().count();
    let end = text.lines().last().unwrap();
    assert!(end.contains("\"kind\":\"end\""));
    // Inflate the declared record count: the trailer no longer matches what
    // the snapshot carries.
    let edited = edit_line(
        &text,
        line_count,
        Some("{\"kind\":\"end\",\"records\":999,\"tasks\":0}"),
    );
    match parse_err(&edited) {
        SnapshotError::Corrupt { line, reason } => {
            assert_eq!(line, line_count, "located at the end record");
            assert!(reason.contains("declares 999"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn non_exact_integers_are_a_located_corrupt_error() {
    let text = canonical();
    // The twin record is line 3 (header, run, twin): float its round tag.
    let twin_line = text.lines().nth(2).unwrap();
    assert!(twin_line.contains("\"kind\":\"twin\""));
    let floated = edit_line(
        &text,
        3,
        Some(&twin_line.replacen("\"round\":", "\"round\":0.5,\"was\":", 1)),
    );
    match parse_err(&floated) {
        SnapshotError::Corrupt { line: 3, reason } => {
            assert!(reason.contains("exact integer"), "{reason}");
        }
        other => panic!("expected Corrupt at line 3, got {other:?}"),
    }
}

#[test]
fn structural_violations_are_located_corrupt_errors() {
    let text = canonical();
    let line_count = text.lines().count();

    // Content after the end record.
    let mut appended = text.clone();
    appended.push_str("{\"kind\":\"queue\",\"node\":0,\"next_seq\":0,\"entries\":[]}\n");
    match parse_err(&appended) {
        SnapshotError::Corrupt { line, reason } => {
            assert_eq!(line, line_count + 1);
            assert!(reason.contains("after the end record"), "{reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // An unknown record kind names itself.
    let unknown = edit_line(&text, 2, Some("{\"kind\":\"checkpoint\"}"));
    match parse_err(&unknown) {
        SnapshotError::Corrupt { line: 2, reason } => {
            assert!(reason.contains("checkpoint"), "{reason}");
        }
        other => panic!("expected Corrupt at line 2, got {other:?}"),
    }

    // Unparsable JSON mid-file is located, not a panic.
    let garbled = edit_line(&text, 4, Some("{\"kind\":\"alg1\","));
    assert!(matches!(
        parse_err(&garbled),
        SnapshotError::Corrupt { line: 4, .. }
    ));
}

#[test]
fn load_maps_missing_files_to_io_errors() {
    let missing = std::env::temp_dir().join("lb_snapshot_corpus_no_such_file.jsonl");
    match snapshot::load(&missing).expect_err("missing file") {
        SnapshotError::Io { path, message } => {
            assert!(path.contains("lb_snapshot_corpus_no_such_file"), "{path}");
            assert!(!message.is_empty());
        }
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn atomic_writes_survive_overwrites_and_round_trip() {
    let text = canonical();
    let parsed: Snapshot = snapshot::parse(&text).unwrap();
    let path = std::env::temp_dir().join(format!(
        "lb_snapshot_corpus_atomic_{}.jsonl",
        std::process::id()
    ));
    // Two writes (the rotating-checkpoint pattern): the reader always sees a
    // complete document, and the temp sibling never survives.
    snapshot::write_atomic(&path, &parsed).unwrap();
    snapshot::write_atomic(&path, &parsed).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
    let dir = path.parent().unwrap();
    let strays: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("lb_snapshot_corpus_atomic") && name.contains(".tmp."))
        .collect();
    assert!(strays.is_empty(), "stray temp files: {strays:?}");
    std::fs::remove_file(&path).ok();
}
