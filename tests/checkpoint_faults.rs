//! Kill-and-resume fault injection for the checkpoint path, driven through
//! the real `lb` binary: a checkpointed run is SIGKILLed mid-flight at a
//! randomized round, the rotating snapshot left on disk must be a complete
//! document (atomic rename: never a torn file), and `lb run --resume` from
//! it — at a *different* shard count — must emit result JSON byte-identical
//! to the uninterrupted run's. All four engine combos, with churn and
//! arrivals. Corrupt, truncated and version-flipped snapshots must fail the
//! resume with a typed, located error on stderr, never silent divergence.
//!
//! CI runs this suite under the `checkpoint` job's `timeout-minutes`, so a
//! hang here fails loudly twice over.

use lb_core::snapshot;
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The churn + arrivals scenario all combos run: long enough (300 rounds,
/// with a per-round checkpoint fsync) that a mid-run kill lands reliably.
fn scenario(algorithm: AlgorithmSpec, model: ModelSpec) -> Scenario {
    Scenario {
        name: "checkpoint_faults".into(),
        seed: 23,
        rounds: 300,
        sample_every: 50,
        algorithm,
        model,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 64,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 6,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: vec![ChurnEvent {
            round: 40,
            kind: ChurnKind::Rewire { seed: 9 },
        }],
        shards: 1,
        federation: 1,
    }
}

fn lb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lb"))
}

fn temp(tag: &str, name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "lb_checkpoint_faults_{}_{tag}_{name}",
        std::process::id()
    ))
}

fn write_scenario(tag: &str, scenario: &Scenario) -> PathBuf {
    let path = temp(tag, "scenario.json");
    std::fs::write(&path, scenario.render_pretty()).unwrap();
    path
}

/// Runs `lb run` to completion and returns the result JSON bytes from
/// `--out`.
fn reference_run(tag: &str, scenario_path: &Path) -> Vec<u8> {
    let out = temp(tag, "reference.json");
    let status = lb()
        .args(["run", scenario_path.to_str().unwrap(), "--quiet", "--out"])
        .arg(&out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn lb run");
    assert!(status.success(), "{tag}: reference run failed");
    let bytes = std::fs::read(&out).unwrap();
    std::fs::remove_file(&out).ok();
    bytes
}

/// A low-rent randomized kill round: varies per test execution, printed on
/// failure so a bad round reproduces.
fn kill_round(salt: u64) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64;
    10 + (nanos.wrapping_mul(2654435761).wrapping_add(salt) % 120)
}

#[test]
fn sigkill_and_resume_is_byte_identical_for_all_engines() {
    for (algorithm, model, tag) in [
        (AlgorithmSpec::Alg1, ModelSpec::Fos, "a1fos"),
        (AlgorithmSpec::Alg1, ModelSpec::Sos, "a1sos"),
        (AlgorithmSpec::Alg2, ModelSpec::Fos, "a2fos"),
        (AlgorithmSpec::Alg2, ModelSpec::Sos, "a2sos"),
    ] {
        let scenario = scenario(algorithm, model);
        let scenario_path = write_scenario(tag, &scenario);
        let reference = reference_run(tag, &scenario_path);
        let ckpt = temp(tag, "rotating.jsonl");
        let kill_at = kill_round(tag.len() as u64);

        // Checkpoint every round and SIGKILL once the rotating file reaches
        // the kill round. Concurrent loads of the rotating file are part of
        // the contract: the atomic rename means a reader never sees a torn
        // document, even with the writer mid-publish.
        let mut child = lb()
            .args([
                "run",
                scenario_path.to_str().unwrap(),
                "--quiet",
                "--checkpoint-every",
                "1",
                "--checkpoint",
            ])
            .arg(&ckpt)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn checkpointed lb run");
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut exited_first = false;
        loop {
            if let Ok(snap) = snapshot::load(&ckpt) {
                if snap.round >= kill_at {
                    break;
                }
            }
            if child.try_wait().expect("poll child").is_some() {
                exited_first = true;
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{tag}: no checkpoint reached round {kill_at} in time"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        if !exited_first {
            child.kill().expect("SIGKILL the run");
        }
        let _ = child.wait();

        // Whatever instant the kill landed at, the snapshot on disk is a
        // complete, parseable document.
        let snap = snapshot::load(&ckpt)
            .unwrap_or_else(|err| panic!("{tag}: post-kill snapshot unreadable: {err}"));
        assert!(snap.round >= 1, "{tag}: at least one checkpoint published");

        // Resume at a DIFFERENT shard count; the result document must be
        // byte-identical to the uninterrupted reference.
        let resumed_out = temp(tag, "resumed.json");
        let output = lb()
            .args(["run", "--quiet", "--shards", "3", "--resume"])
            .arg(&ckpt)
            .args(["--out"])
            .arg(&resumed_out)
            .stdout(Stdio::null())
            .output()
            .expect("spawn lb run --resume");
        assert!(
            output.status.success(),
            "{tag}: resume from round {} (kill target {kill_at}) failed: {}",
            snap.round,
            String::from_utf8_lossy(&output.stderr)
        );
        assert_eq!(
            std::fs::read(&resumed_out).unwrap(),
            reference,
            "{tag}: resumed result diverged (killed near round {kill_at})"
        );

        std::fs::remove_file(&scenario_path).ok();
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&resumed_out).ok();
    }
}

/// Resume with a damaged snapshot: every shape fails with the typed,
/// located error on stderr and a non-zero exit — never a silent partial
/// resume.
#[test]
fn damaged_snapshots_fail_resume_with_typed_errors() {
    let tag = "damage";
    let scenario = scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
    let scenario_path = write_scenario(tag, &scenario);
    let ckpt = temp(tag, "good.jsonl");
    let status = lb()
        .args([
            "run",
            scenario_path.to_str().unwrap(),
            "--quiet",
            "--checkpoint-every",
            "100",
            "--checkpoint",
        ])
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn lb run");
    assert!(status.success());
    let good = std::fs::read_to_string(&ckpt).unwrap();

    let resume_err = |name: &str, contents: &str, code: i32| -> String {
        let path = temp(tag, name);
        std::fs::write(&path, contents).unwrap();
        let output = lb()
            .args(["run", "--quiet", "--resume"])
            .arg(&path)
            .stdout(Stdio::null())
            .output()
            .expect("spawn lb run --resume");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            output.status.code(),
            Some(code),
            "{name}: damaged snapshots fail with the class's exit code"
        );
        String::from_utf8_lossy(&output.stderr).into_owned()
    };

    // Truncated: the end record is gone.
    let lines: Vec<&str> = good.lines().collect();
    let unsealed: String = lines[..lines.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    let err = resume_err("truncated.jsonl", &unsealed, 1);
    assert!(err.contains("truncated snapshot"), "{err}");
    assert!(err.contains("without the end record"), "{err}");

    // Torn mid-line write.
    let err = resume_err("torn.jsonl", &good[..good.len() - 9], 1);
    assert!(err.contains("torn line"), "{err}");

    // Flipped version.
    let flipped = good.replacen("\"version\":1", "\"version\":7", 1);
    assert_ne!(flipped, good);
    let err = resume_err("version.jsonl", &flipped, 1);
    assert!(err.contains("unsupported snapshot version 7"), "{err}");

    // Stale/mismatched: the snapshot's engine is not what its (edited)
    // scenario builds. Unlike the malformed-document shapes above (exit 1),
    // a well-formed snapshot for the *wrong* run is a protocol violation —
    // the same class as a serve handshake embedding the wrong scenario —
    // so it maps to exit code 3.
    let mismatched = good.replacen("\"algorithm\":\"alg1\"", "\"algorithm\":\"alg2\"", 1);
    assert_ne!(mismatched, good);
    let err = resume_err("mismatch.jsonl", &mismatched, 3);
    assert!(err.contains("does not match this run"), "{err}");

    std::fs::remove_file(&scenario_path).ok();
    std::fs::remove_file(&ckpt).ok();
}
