//! Federation equivalence, driven through the real `lb` binary: a scenario
//! partitioned across 1, 2 and 4 OS processes by `lb federate` must emit
//! result JSON **byte-identical** to the sequential `lb run` of the same
//! scenario — for all four engine combos, with churn (rewire + resize) and
//! Poisson arrivals in flight, and composing with per-process `--shards`
//! and coordinator-driven checkpoints (`lb run --resume` accepts them).
//! Fault injection: a SIGKILLed worker must fail the coordinator with the
//! typed protocol exit code, never a hang.
//!
//! CI runs this suite under the `federate` job's `timeout-minutes`, so a
//! hang here fails loudly twice over.

use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The churn + arrivals scenario every combo runs: a rewire and a
/// downsizing resize, both crossing partition boundaries, with sustained
/// Poisson arrivals and uniform completions.
fn scenario(algorithm: AlgorithmSpec, model: ModelSpec, federation: usize) -> Scenario {
    Scenario {
        name: "federate_equivalence".into(),
        seed: 23,
        rounds: 80,
        sample_every: 20,
        algorithm,
        model,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 64,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 6,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: vec![
            ChurnEvent {
                round: 25,
                kind: ChurnKind::Rewire { seed: 9 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Delta {
                    add: vec![(0, 18), (5, 27)],
                    remove: vec![(0, 1)],
                },
            },
            ChurnEvent {
                round: 55,
                kind: ChurnKind::Resize {
                    target_n: 36,
                    seed: 11,
                },
            },
        ],
        shards: 1,
        federation,
    }
}

fn lb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lb"))
}

fn temp(tag: &str, name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "lb_federate_equivalence_{}_{tag}_{name}",
        std::process::id()
    ))
}

fn write_scenario(tag: &str, scenario: &Scenario) -> PathBuf {
    let path = temp(tag, "scenario.json");
    std::fs::write(&path, scenario.render_pretty()).unwrap();
    path
}

/// Runs `lb run` to completion and returns the result JSON bytes.
fn sequential_run(tag: &str, scenario_path: &Path, shards: Option<usize>) -> Vec<u8> {
    let out = temp(tag, "sequential.json");
    let mut cmd = lb();
    cmd.args(["run", scenario_path.to_str().unwrap(), "--quiet"]);
    if let Some(shards) = shards {
        cmd.args(["--shards", &shards.to_string()]);
    }
    let output = cmd
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .output()
        .expect("spawn lb run");
    assert!(
        output.status.success(),
        "{tag}: sequential run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(&out).unwrap();
    std::fs::remove_file(&out).ok();
    bytes
}

/// Runs `lb federate` to completion and returns the result JSON bytes.
fn federated_run(tag: &str, scenario_path: &Path, extra: &[&str]) -> Vec<u8> {
    let out = temp(tag, "federated.json");
    let output = lb()
        .args(["federate", scenario_path.to_str().unwrap(), "--quiet"])
        .args(extra)
        .arg("--out")
        .arg(&out)
        .stdout(Stdio::null())
        .output()
        .expect("spawn lb federate");
    assert!(
        output.status.success(),
        "{tag}: federated run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(&out).unwrap();
    std::fs::remove_file(&out).ok();
    bytes
}

/// All four engine combos, partitioned across 1, 2 and 4 processes: the
/// federated result document is byte-identical to the sequential one.
#[test]
fn federated_runs_are_byte_identical_for_all_engines() {
    for (algorithm, model, combo) in [
        (AlgorithmSpec::Alg1, ModelSpec::Fos, "a1fos"),
        (AlgorithmSpec::Alg1, ModelSpec::Sos, "a1sos"),
        (AlgorithmSpec::Alg2, ModelSpec::Fos, "a2fos"),
        (AlgorithmSpec::Alg2, ModelSpec::Sos, "a2sos"),
    ] {
        for parts in [1usize, 2, 4] {
            let tag = format!("{combo}_p{parts}");
            let scenario = scenario(algorithm, model, parts);
            let scenario_path = write_scenario(&tag, &scenario);
            let sequential = sequential_run(&tag, &scenario_path, None);
            let federated = federated_run(&tag, &scenario_path, &[]);
            assert_eq!(
                federated, sequential,
                "{tag}: federated result diverged from the sequential run"
            );
            std::fs::remove_file(&scenario_path).ok();
        }
    }
}

/// Per-process intra-partition sharding composes with federation: a
/// 2-process run whose workers each step with 2 shards matches the
/// sequential 2-shard run byte for byte.
#[test]
fn per_process_shards_compose_with_federation() {
    let tag = "shards2";
    let scenario = scenario(AlgorithmSpec::Alg1, ModelSpec::Sos, 2);
    let scenario_path = write_scenario(tag, &scenario);
    let sequential = sequential_run(tag, &scenario_path, Some(2));
    let federated = federated_run(tag, &scenario_path, &["--shards", "2"]);
    assert_eq!(
        federated, sequential,
        "{tag}: sharded federated result diverged from the sequential run"
    );
    std::fs::remove_file(&scenario_path).ok();
}

/// A coordinator-written checkpoint is exactly what the sequential engine
/// would capture: resuming it under plain `lb run --resume` completes to a
/// result document byte-identical to the uninterrupted sequential run.
#[test]
fn coordinator_checkpoint_resumes_under_the_sequential_driver() {
    let tag = "ckpt";
    let scenario = scenario(AlgorithmSpec::Alg2, ModelSpec::Sos, 2);
    let scenario_path = write_scenario(tag, &scenario);
    let sequential = sequential_run(tag, &scenario_path, None);
    let ckpt = temp(tag, "rotating.jsonl");
    federated_run(
        tag,
        &scenario_path,
        &[
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "30",
        ],
    );

    let resumed_out = temp(tag, "resumed.json");
    let output = lb()
        .args(["run", "--quiet", "--resume"])
        .arg(&ckpt)
        .arg("--out")
        .arg(&resumed_out)
        .stdout(Stdio::null())
        .output()
        .expect("spawn lb run --resume");
    assert!(
        output.status.success(),
        "{tag}: resume from the federated checkpoint failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        std::fs::read(&resumed_out).unwrap(),
        sequential,
        "{tag}: resumed result diverged from the sequential run"
    );
    std::fs::remove_file(&scenario_path).ok();
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&resumed_out).ok();
}

/// Reads the coordinator's `--listen-info` artefact, polling until the bind
/// is published.
fn await_listen_addr(info: &Path, deadline: Instant) -> String {
    loop {
        if let Ok(text) = std::fs::read_to_string(info) {
            // One-line JSON: {"addr": "127.0.0.1:PORT"}.
            if let Some(start) = text.find("\"addr\"") {
                let rest = &text[start + 6..];
                if let Some(open) = rest.find('"') {
                    if let Some(close) = rest[open + 1..].find('"') {
                        return rest[open + 1..open + 1 + close].to_string();
                    }
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "coordinator never published its listen address"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// SIGKILLing one worker mid-run fails the coordinator with the typed
/// protocol exit code (3) and a located message — never a hang, never a
/// partial result document.
#[test]
fn killed_worker_fails_the_coordinator_with_a_typed_error() {
    let tag = "kill";
    // Enough rounds that the kill lands mid-run even on a fast machine.
    let mut scenario = scenario(AlgorithmSpec::Alg1, ModelSpec::Fos, 2);
    scenario.rounds = 50_000;
    scenario.sample_every = 50_000;
    scenario.churn.clear();
    let scenario_path = write_scenario(tag, &scenario);
    let info = temp(tag, "listen.json");
    let stderr_path = temp(tag, "coordinator.stderr");
    std::fs::remove_file(&info).ok();

    let mut coordinator = lb()
        .args([
            "federate",
            scenario_path.to_str().unwrap(),
            "--quiet",
            "--no-spawn",
            "--listen-info",
        ])
        .arg(&info)
        .stdout(Stdio::null())
        .stderr(Stdio::from(std::fs::File::create(&stderr_path).unwrap()))
        .spawn()
        .expect("spawn lb federate --no-spawn");
    let addr = await_listen_addr(&info, Instant::now() + Duration::from_secs(30));

    let mut workers: Vec<_> = (0..2)
        .map(|rank| {
            lb().args([
                "federate-worker",
                "--connect",
                &addr,
                "--rank",
                &rank.to_string(),
                "--parts",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lb federate-worker")
        })
        .collect();

    // Let the federation form and run some rounds, then kill rank 1.
    std::thread::sleep(Duration::from_millis(500));
    workers[1].kill().expect("SIGKILL worker rank 1");
    let _ = workers[1].wait();

    // The coordinator must exit — with the protocol code — well before the
    // test harness would time out. Poll rather than block so a hang fails
    // with a message instead of wedging the suite.
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Some(status) = coordinator.try_wait().expect("poll coordinator") {
            break status;
        }
        if Instant::now() >= deadline {
            coordinator.kill().ok();
            panic!("{tag}: coordinator hung after the worker was killed");
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        status.code(),
        Some(3),
        "{tag}: expected the protocol exit code, stderr: {}",
        std::fs::read_to_string(&stderr_path).unwrap_or_default()
    );
    let stderr = std::fs::read_to_string(&stderr_path).unwrap_or_default();
    assert!(
        stderr.contains("federate rank 1"),
        "{tag}: coordinator error does not name the lost worker: {stderr}"
    );

    for worker in &mut workers {
        worker.kill().ok();
        let _ = worker.wait();
    }
    std::fs::remove_file(&scenario_path).ok();
    std::fs::remove_file(&info).ok();
    std::fs::remove_file(&stderr_path).ok();
}

/// Malformed invocations fail with the usage exit code before any socket
/// work happens.
#[test]
fn usage_errors_exit_with_code_2() {
    let tag = "usage";
    let scenario = scenario(AlgorithmSpec::Alg1, ModelSpec::Fos, 2);
    let scenario_path = write_scenario(tag, &scenario);
    for args in [
        vec!["federate"],
        vec!["federate", scenario_path.to_str().unwrap(), "--parts", "0"],
        vec!["federate", scenario_path.to_str().unwrap(), "--parts", "65"],
        vec![
            "federate",
            scenario_path.to_str().unwrap(),
            "--checkpoint",
            "x.jsonl",
        ],
        vec!["federate-worker"],
        vec![
            "federate-worker",
            "--connect",
            "127.0.0.1:1",
            "--rank",
            "2",
            "--parts",
            "2",
        ],
    ] {
        let output = lb()
            .args(&args)
            .stdout(Stdio::null())
            .output()
            .expect("spawn lb");
        assert_eq!(
            output.status.code(),
            Some(2),
            "{args:?}: expected the usage exit code, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_file(&scenario_path).ok();
}
