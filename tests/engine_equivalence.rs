//! Equivalence of the optimised engine with the seed semantics.
//!
//! The buffer-reuse kernel (`compute_flows_into`), the `TaskQueue` storage
//! (ring buffer / binary heaps) and the scratch-buffer round loop replaced
//! the seed implementation's allocate-per-round engine. These property tests
//! pin the refactor down: for the same inputs and seeds, the optimised
//! [`FlowImitation`] / [`RandomizedImitation`] must produce **bit-identical**
//! load vectors, cumulative continuous flows and dummy counts as a direct
//! reimplementation of the seed semantics (`Vec<Task>` storage, O(k)
//! reference picking, allocating kernel wrapper), across all four continuous
//! processes and all three task pickers — plus conservation-of-load
//! invariants.

use lb_bench::hotpath::SeedAlg1 as ReferenceAlg1;
use lb_core::continuous::{
    ContinuousProcess, ContinuousRunner, DimensionExchange, Fos, RandomMatching, Sos,
};
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RandomizedImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds, Task};
use lb_graph::{generators, AlphaScheme, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which continuous process the twin runs (constructed twice with identical
/// parameters/seeds so reference and optimised engines see the same twin).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Model {
    Fos,
    Sos,
    DimensionExchange,
    RandomMatching(u64),
}

struct BoxedProcess(Box<dyn ContinuousProcess>);

impl ContinuousProcess for BoxedProcess {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn graph(&self) -> &Graph {
        self.0.graph()
    }
    fn shared_graph(&self) -> Arc<Graph> {
        self.0.shared_graph()
    }
    fn speeds(&self) -> &[f64] {
        self.0.speeds()
    }
    fn compute_flows_into(
        &mut self,
        t: usize,
        x: &[f64],
        out: &mut [lb_core::continuous::EdgeFlow],
    ) {
        self.0.compute_flows_into(t, x, out)
    }
}

fn build_model(model: Model, graph: &Arc<Graph>, speeds: &Speeds) -> BoxedProcess {
    BoxedProcess(match model {
        Model::Fos => {
            Box::new(Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).unwrap())
        }
        Model::Sos => Box::new(
            Sos::new(
                Arc::clone(graph),
                speeds,
                AlphaScheme::MaxDegreePlusOne,
                1.6,
            )
            .unwrap(),
        ),
        Model::DimensionExchange => {
            Box::new(DimensionExchange::with_greedy_coloring(Arc::clone(graph), speeds).unwrap())
        }
        Model::RandomMatching(seed) => {
            Box::new(RandomMatching::new(Arc::clone(graph), speeds, seed).unwrap())
        }
    })
}

/// Seed-semantics Algorithm 2: allocating twin, cloned flow snapshot, fresh
/// delivery buffers, and the same per-`(seed, round, edge)` rounding sub-RNG
/// derivation as the optimised engine (`edge_rounding_rng`), so both sides
/// make identical rounding decisions.
struct ReferenceAlg2<A: ContinuousProcess> {
    process: A,
    twin_loads: Vec<f64>,
    cumulative_flow: Vec<f64>,
    tokens: Vec<u64>,
    dummy: Vec<u64>,
    discrete_flow: Vec<i64>,
    seed: u64,
    round: usize,
    dummy_created: u64,
}

impl<A: ContinuousProcess> ReferenceAlg2<A> {
    fn new(process: A, initial: &InitialLoad, seed: u64) -> Self {
        let m = process.graph().edge_count();
        let n = process.graph().node_count();
        ReferenceAlg2 {
            twin_loads: initial.load_vector_f64(),
            cumulative_flow: vec![0.0; m],
            tokens: initial.load_vector(),
            dummy: vec![0; n],
            discrete_flow: vec![0; m],
            seed,
            round: 0,
            dummy_created: 0,
            process,
        }
    }

    fn step(&mut self) {
        let flows = self.process.compute_flows(self.round, &self.twin_loads);
        let edges: Vec<(usize, usize)> = self.process.graph().edges().to_vec();
        for (e, &(u, v)) in edges.iter().enumerate() {
            let net = flows[e].net();
            self.twin_loads[u] -= net;
            self.twin_loads[v] += net;
            self.cumulative_flow[e] += net;
        }
        let continuous_flow = self.cumulative_flow.clone();
        let n = self.process.graph().node_count();
        let mut real_deliveries = vec![0u64; n];
        let mut dummy_deliveries = vec![0u64; n];
        for (e, &(u, v)) in edges.iter().enumerate() {
            let deficit = continuous_flow[e] - self.discrete_flow[e] as f64;
            if deficit == 0.0 {
                continue;
            }
            let (sender, receiver, magnitude, sign) = if deficit > 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            let floor = magnitude.floor();
            let fraction = magnitude - floor;
            let round_up = fraction > 0.0
                && lb_core::discrete::edge_rounding_rng(self.seed, self.round, e)
                    .gen_bool(fraction.min(1.0));
            let send = floor as u64 + u64::from(round_up);
            if send == 0 {
                continue;
            }
            let real = send.min(self.tokens[sender]);
            self.tokens[sender] -= real;
            let dummy = send - real;
            let from_held = dummy.min(self.dummy[sender]);
            self.dummy[sender] -= from_held;
            self.dummy_created += dummy - from_held;
            real_deliveries[receiver] += real;
            dummy_deliveries[receiver] += dummy;
            self.discrete_flow[e] += sign * send as i64;
        }
        for i in 0..n {
            self.tokens[i] += real_deliveries[i];
            self.dummy[i] += dummy_deliveries[i];
        }
        self.round += 1;
    }

    fn loads(&self) -> Vec<f64> {
        self.tokens
            .iter()
            .zip(&self.dummy)
            .map(|(&t, &d)| (t + d) as f64)
            .collect()
    }
}

const MODELS: [Model; 4] = [
    Model::Fos,
    Model::Sos,
    Model::DimensionExchange,
    Model::RandomMatching(0xFEED),
];

const PICKERS: [TaskPicker; 3] = [
    TaskPicker::Fifo,
    TaskPicker::LargestFirst,
    TaskPicker::SmallestFirst,
];

fn small_graph(case: u64) -> Arc<Graph> {
    let g = match case % 4 {
        0 => generators::hypercube(4).unwrap(),
        1 => generators::torus(4, 4).unwrap(),
        2 => generators::cycle(11).unwrap(),
        _ => {
            let mut rng = StdRng::seed_from_u64(case);
            generators::random_regular(14, 3, &mut rng).unwrap()
        }
    };
    Arc::new(g)
}

/// Weighted initial load (unit weights for `unit_only`), deterministic per
/// seed.
fn workload(n: usize, seed: u64, unit_only: bool) -> InitialLoad {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks: Vec<Vec<Task>> = Vec::with_capacity(n);
    let mut id = 0u64;
    for _ in 0..n {
        let count = rng.gen_range(0..18u32);
        let mut node_tasks = Vec::new();
        for _ in 0..count {
            let weight = if unit_only {
                1
            } else {
                rng.gen_range(1..=3u64)
            };
            node_tasks.push(Task::new(lb_core::TaskId(id), weight));
            id += 1;
        }
        tasks.push(node_tasks);
    }
    InitialLoad::from_tasks(tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Algorithm 1, every model × every picker: the optimised engine's load
    /// vector, twin cumulative flows, real loads and dummy count are
    /// bit-identical to the seed-semantics reference at every round.
    #[test]
    fn alg1_matches_seed_semantics(case in 0u64..1000) {
        let graph = small_graph(case);
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = workload(n, case.wrapping_mul(31).wrapping_add(7), false);
        for model in MODELS {
            for picker in PICKERS {
                let optimized_process = build_model(model, &graph, &speeds);
                let reference_process = build_model(model, &graph, &speeds);
                let mut optimized =
                    FlowImitation::new(optimized_process, &initial, speeds.clone(), picker)
                        .unwrap();
                let mut reference = ReferenceAlg1::new(reference_process, &initial, picker);
                for round in 0..30 {
                    optimized.step();
                    reference.step();
                    prop_assert_eq!(
                        optimized.loads(),
                        reference.loads(),
                        "loads diverged: {:?} {:?} round {}",
                        model,
                        picker,
                        round
                    );
                    prop_assert_eq!(
                        optimized.real_loads(),
                        reference.real_loads(),
                        "real loads diverged: {:?} {:?} round {}",
                        model,
                        picker,
                        round
                    );
                    prop_assert_eq!(
                        optimized.continuous().cumulative_flows(),
                        reference.cumulative_flows(),
                        "cumulative flows diverged: {:?} {:?} round {}",
                        model,
                        picker,
                        round
                    );
                    prop_assert_eq!(optimized.dummy_created(), reference.dummy_created());
                }
            }
        }
    }

    /// Algorithm 2 (unit tokens), every model: identical trajectories for
    /// identical RNG seeds.
    #[test]
    fn alg2_matches_seed_semantics(case in 0u64..1000) {
        let graph = small_graph(case.wrapping_add(2));
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = workload(n, case.wrapping_mul(17).wrapping_add(3), true);
        let rng_seed = case.wrapping_mul(101);
        for model in MODELS {
            let optimized_process = build_model(model, &graph, &speeds);
            let reference_process = build_model(model, &graph, &speeds);
            let mut optimized =
                RandomizedImitation::new(optimized_process, &initial, speeds.clone(), rng_seed)
                    .unwrap();
            let mut reference = ReferenceAlg2::new(reference_process, &initial, rng_seed);
            for round in 0..30 {
                optimized.step();
                reference.step();
                prop_assert_eq!(
                    optimized.loads(),
                    reference.loads(),
                    "loads diverged: {:?} round {}",
                    model,
                    round
                );
                prop_assert_eq!(optimized.dummy_created(), reference.dummy_created);
            }
        }
    }

    /// Conservation invariants of the optimised engine: real workload weight
    /// is exactly conserved, total load equals real plus held dummy load,
    /// and held dummy load never exceeds what the infinite source created.
    #[test]
    fn conservation_of_load_invariants(case in 0u64..1000) {
        let graph = small_graph(case.wrapping_add(1));
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = workload(n, case.wrapping_mul(13).wrapping_add(5), false);
        let total_real = initial.total_weight() as f64;
        for model in MODELS {
            for picker in PICKERS {
                let process = build_model(model, &graph, &speeds);
                let mut alg1 =
                    FlowImitation::new(process, &initial, speeds.clone(), picker).unwrap();
                for _ in 0..25 {
                    alg1.step();
                    let real: f64 = alg1.real_loads().iter().sum();
                    prop_assert!((real - total_real).abs() < 1e-9);
                    let total: f64 = alg1.loads().iter().sum();
                    prop_assert!((total - real - alg1.dummy_load() as f64).abs() < 1e-9);
                    prop_assert!(alg1.dummy_load() <= alg1.dummy_created());
                }
            }
        }
    }

    /// The buffer-reuse kernel driven through `ContinuousRunner` matches a
    /// manual simulation through the allocating `compute_flows` shim, flow
    /// by flow and load by load.
    #[test]
    fn kernel_and_shim_agree(case in 0u64..1000) {
        let graph = small_graph(case.wrapping_add(3));
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = workload(n, case.wrapping_mul(7).wrapping_add(11), false);
        for model in MODELS {
            let mut shim_process = build_model(model, &graph, &speeds);
            let kernel_process = build_model(model, &graph, &speeds);
            let mut runner = ContinuousRunner::new(kernel_process, initial.load_vector_f64());
            let mut x = initial.load_vector_f64();
            for t in 0..20 {
                let flows = shim_process.compute_flows(t, &x);
                for (e, &(u, v)) in graph.edges().iter().enumerate() {
                    let net = flows[e].net();
                    x[u] -= net;
                    x[v] += net;
                }
                let kernel_flows = runner.step();
                prop_assert_eq!(&flows[..], kernel_flows);
                prop_assert_eq!(&x[..], runner.loads());
            }
        }
    }
}
