//! Corpus test for `lb lint`: every rule pinned by positive *and* negative
//! snippets with exact `file:line:col` locations, the tokenizer exercised on
//! the constructs that break naive scanners (string literals, raw strings,
//! nested block comments, `#[cfg(test)]` regions), and — the acceptance
//! gate — a self-check that the workspace itself lints clean through the
//! same binary entry point CI uses.

use lb_lint::{lint_source, report_json, Config, Finding, Linter, RULES};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Lints a snippet under the default (everything-in-scope) config, as if it
/// lived at `crates/core/src/corpus.rs`.
fn lint(src: &str) -> Vec<Finding> {
    lint_source("crates/core/src/corpus.rs", src, &Config::default())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

/// `(rule, line, col)` triples — the exact-location view of a report.
fn located(findings: &[Finding]) -> Vec<(&'static str, usize, usize)> {
    findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// R01 — nondeterminism
// ---------------------------------------------------------------------------

#[test]
fn r01_wall_clocks_and_hashed_collections() {
    let src = "fn f() {\n    let t = SystemTime::now();\n}\n";
    assert_eq!(located(&lint(src)), [("R01", 2, 13)]);

    let src = "fn f() {\n    let t = Instant::now();\n}\n";
    assert_eq!(located(&lint(src)), [("R01", 2, 13)]);

    let src = "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
    assert_eq!(rules_of(&lint(src)), ["R01", "R01"]);

    let src = "fn f() {\n    let s = HashSet::from([1]);\n}\n";
    assert_eq!(located(&lint(src)), [("R01", 2, 13)]);

    // The deterministic replacements pass.
    assert!(lint("fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }").is_empty());
    assert!(lint("fn f() { let s = BTreeSet::from([1]); }").is_empty());
    // `now` on some other path is not a wall clock.
    assert!(lint("fn f() { let t = Clock::now(); }").is_empty());
}

// ---------------------------------------------------------------------------
// R02 — truncating casts
// ---------------------------------------------------------------------------

#[test]
fn r02_integer_as_casts() {
    let src = "fn f(x: u64) {\n    let b = x as u8;\n}\n";
    assert_eq!(located(&lint(src)), [("R02", 2, 15)]);

    let src = "fn f(x: usize) {\n    let n = x as u64;\n}\n";
    assert_eq!(rules_of(&lint(src)), ["R02"]);

    // Float casts and `as` in a non-cast position are out of scope.
    assert!(lint("fn f(x: u32) { let y = x as f64; }").is_empty());
    assert!(lint("use lb_core::snapshot as snap;\n").is_empty());
    // The sanctioned conversions don't use `as` at all.
    assert!(lint("fn f(x: u64) { let n = usize_exact(x); }").is_empty());
    assert!(lint("fn f(x: u64) { let b = u8::try_from(x); }").is_empty());
}

// ---------------------------------------------------------------------------
// R03 — panics in library code
// ---------------------------------------------------------------------------

#[test]
fn r03_unwrap_expect_panic() {
    let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n}\n";
    assert_eq!(located(&lint(src)), [("R03", 2, 7)]);

    let src = "fn f(r: Result<u8, E>) {\n    r.expect(\"always ok\");\n}\n";
    assert_eq!(located(&lint(src)), [("R03", 2, 7)]);

    let src = "fn f() {\n    panic!(\"boom\");\n}\n";
    assert_eq!(located(&lint(src)), [("R03", 2, 5)]);

    // Poisoned-lock propagation is a built-in exemption: the panic already
    // happened on another thread.
    assert!(lint("fn f(m: &Mutex<u8>) { let g = m.lock().expect(\"poisoned\"); }").is_empty());
    assert!(lint("fn f() { state = cv.wait(state).expect(\"poisoned\"); }").is_empty());
    // Different identifiers entirely.
    assert!(lint("fn f(x: Option<u8>) { x.unwrap_or(0); }").is_empty());
    assert!(lint("fn f(x: Option<u8>) { x.unwrap_or_default(); }").is_empty());
}

// ---------------------------------------------------------------------------
// R04 — non-atomic artefact writes
// ---------------------------------------------------------------------------

#[test]
fn r04_direct_filesystem_writes() {
    let src = "fn f() {\n    fs::write(path, bytes)?;\n}\n";
    assert_eq!(located(&lint(src)), [("R04", 2, 5)]);

    let src = "fn f() {\n    let out = File::create(path)?;\n}\n";
    assert_eq!(located(&lint(src)), [("R04", 2, 15)]);

    // The atomic publish path is the sanctioned spelling.
    assert!(lint("fn f() { write_bytes_atomic(path, bytes)?; }").is_empty());
    // Reads are fine.
    assert!(lint("fn f() { let s = fs::read_to_string(path)?; }").is_empty());
}

// ---------------------------------------------------------------------------
// R05 — allocations in zero-alloc hot paths
// ---------------------------------------------------------------------------

#[test]
fn r05_scoped_to_annotated_fns() {
    // Unannotated functions may allocate freely.
    assert!(lint("fn setup() { let v: Vec<u8> = Vec::new(); }").is_empty());
    assert!(lint("fn setup() { let v = vec![1, 2]; }").is_empty());

    let src = "// lint: zero-alloc\n\
               fn hot(&mut self) {\n    let v = Vec::new();\n}\n";
    assert_eq!(located(&lint(src)), [("R05", 3, 13)]);

    let src = "// lint: zero-alloc\n\
               fn hot(&mut self) {\n    self.log = format!(\"{x}\");\n}\n";
    assert_eq!(located(&lint(src)), [("R05", 3, 16)]);

    // Turbofish does not hide the allocation.
    let src = "// lint: zero-alloc\nfn hot() { let v = Vec::<u8>::new(); }\n";
    assert_eq!(rules_of(&lint(src)), ["R05"]);

    // `.collect()` via turbofish too.
    let src = "// lint: zero-alloc\n\
               fn hot(&self) { let v = it.collect::<Vec<_>>(); }\n";
    assert_eq!(rules_of(&lint(src)), ["R05"]);

    // The region ends with the function body: the next fn is cold again.
    let src = "// lint: zero-alloc\n\
               fn hot(&mut self) { self.buf.clear(); }\n\
               fn cold(&self) { let v = vec![1]; }\n";
    assert!(lint(src).is_empty());

    // A directive with no following fn is itself a finding.
    let src = "// lint: zero-alloc\nconst X: u8 = 1;\n";
    assert_eq!(rules_of(&lint(src)), ["R00"]);
}

// ---------------------------------------------------------------------------
// R06 — deprecated driver entry points
// ---------------------------------------------------------------------------

#[test]
fn r06_calls_flagged_definitions_exempt() {
    let src = "fn f() {\n    let run = run_scenario(&scenario, 64, 400, |_| {});\n}\n";
    assert_eq!(located(&lint(src)), [("R06", 2, 15)]);

    let src = "fn f() { resume_replay(dir, source)?; }";
    assert_eq!(rules_of(&lint(src)), ["R06"]);

    // Definitions (and the Session methods that replaced the free fns) pass.
    assert!(lint("pub fn run_scenario(s: &Scenario) {}").is_empty());
    assert!(lint("fn f() { session.run(&scenario)?; }").is_empty());
}

// ---------------------------------------------------------------------------
// Suppressions and R00
// ---------------------------------------------------------------------------

#[test]
fn suppressions_require_reasons() {
    // A reasoned allow silences the next line.
    let src = "fn f(x: Option<u8>) {\n\
               // lint: allow(R03, checked by the caller)\n\
               x.unwrap();\n}\n";
    assert!(lint(src).is_empty());

    // Same-line allow works too.
    let src = "fn f(x: Option<u8>) { x.unwrap(); // lint: allow(R03, checked)\n}\n";
    assert!(lint(src).is_empty());

    // A bare allow is itself a finding — and does not suppress.
    let src = "fn f(x: Option<u8>) {\n\
               // lint: allow(R03)\n\
               x.unwrap();\n}\n";
    assert_eq!(rules_of(&lint(src)), ["R00", "R03"]);

    // Unknown rule ids are flagged.
    let src = "// lint: allow(R99, no such rule)\nfn f() {}\n";
    assert_eq!(rules_of(&lint(src)), ["R00"]);

    // An allow for rule A does not silence rule B.
    let src = "fn f() {\n\
               // lint: allow(R02, wrong rule)\n\
               let t = SystemTime::now();\n}\n";
    assert_eq!(rules_of(&lint(src)), ["R01"]);
}

// ---------------------------------------------------------------------------
// Tokenizer corner cases
// ---------------------------------------------------------------------------

#[test]
fn tokenizer_string_literals_are_not_code() {
    // Rule spellings inside string literals never fire.
    assert!(lint("fn f() { log(\"call x.unwrap() here\"); }").is_empty());
    assert!(lint("fn f() { let s = \"SystemTime::now()\"; }").is_empty());
    assert!(lint("fn f() { let s = r\"fs::write(path, b)\"; }").is_empty());
    assert!(lint("fn f() { let s = r#\"panic!(\"inner\")\"#; }").is_empty());
    // A quote inside a char literal doesn't open a string.
    assert!(lint("fn f() { let c = '\"'; let x = y.unwrap_or(0); }").is_empty());
}

#[test]
fn tokenizer_comments_are_not_code() {
    assert!(lint("fn f() {\n    // x.unwrap() would panic\n}\n").is_empty());
    assert!(lint("fn f() { /* fs::write(p, b) */ }").is_empty());
    // Nested block comments (Rust allows them).
    assert!(lint("fn f() { /* outer /* panic!(\"x\") */ still comment */ }").is_empty());
}

#[test]
fn tokenizer_line_numbers_survive_multiline_literals() {
    // A `\`-continued string and an embedded newline both advance the line
    // counter; the finding after them must carry the real source line.
    let src = "fn f() {\n\
               let s = \"one \\\n  two\";\n\
               let t = \"a\n b\";\n\
               x.unwrap();\n}\n";
    assert_eq!(located(&lint(src)), [("R03", 6, 3)]);

    // Raw strings spanning lines as well.
    let src = "fn f() {\nlet s = r#\"line\nline\nline\"#;\nx.unwrap();\n}\n";
    assert_eq!(located(&lint(src)), [("R03", 5, 3)]);
}

#[test]
fn test_regions_are_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n\
               fn lib() { y.unwrap(); }\n";
    assert_eq!(located(&lint(src)), [("R03", 5, 14)]);

    assert!(lint("#[test]\nfn t() { x.unwrap(); }\n").is_empty());

    // `#[cfg(not(test))]` guards *production* code — not exempt.
    let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
    assert_eq!(rules_of(&lint(src)), ["R03"]);
}

// ---------------------------------------------------------------------------
// Config scoping
// ---------------------------------------------------------------------------

#[test]
fn config_scopes_rules_by_path() {
    let toml = "[rules.R03]\ninclude = [\"crates/core\"]\n";
    let config = Config::parse(toml).expect("valid config");
    let src = "fn f(x: Option<u8>) { x.unwrap(); }";
    assert_eq!(
        rules_of(&lint_source("crates/core/src/lib.rs", src, &config)),
        ["R03"]
    );
    assert!(lint_source("crates/bench/src/lib.rs", src, &config).is_empty());
    // Whole-component prefixes: `crates/core` does not cover `crates/corex`.
    assert!(lint_source("crates/corex/src/lib.rs", src, &config).is_empty());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

#[test]
fn findings_sort_stably_and_render_json() {
    let src = "fn f() {\n    x.unwrap();\n    let t = SystemTime::now();\n}\n";
    let findings = lint(src);
    assert_eq!(rules_of(&findings), ["R03", "R01"]);
    let json = report_json(&findings).render();
    assert!(json.contains("\"count\":2"), "count in {json}");
    assert!(json.contains("\"rule\":\"R03\""), "rule id in {json}");
    assert!(
        json.contains("\"file\":\"crates/core/src/corpus.rs\""),
        "file in {json}"
    );
}

#[test]
fn every_rule_is_documented() {
    assert_eq!(RULES.len(), 7);
    for rule in RULES {
        assert!(rule.id.starts_with('R') && rule.id.len() == 3);
        assert!(!rule.name.is_empty() && !rule.contract.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Workspace self-check: the acceptance gate
// ---------------------------------------------------------------------------

#[test]
fn workspace_lints_clean_via_library() {
    let linter = Linter::load(&workspace_root()).expect("lint.toml parses");
    let findings = linter.lint_workspace().expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace must lint clean, got:\n{}",
        findings
            .iter()
            .map(|f| f.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_subcommand_exit_codes() {
    let root = workspace_root();
    // Clean workspace → exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_lb"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("lb runs");
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Findings → exit 1 with a diagnostic naming the rule; point the linter
    // at a scratch tree with a planted violation.
    let dir = std::env::temp_dir().join(format!("lb-lint-corpus-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("src")).expect("scratch tree");
    std::fs::write(
        dir.join("src/planted.rs"),
        "pub fn f() { let t = SystemTime::now(); }\n",
    )
    .expect("plant violation");
    let out = Command::new(env!("CARGO_BIN_EXE_lb"))
        .args(["lint", "--format", "json", "--root"])
        .arg(&dir)
        .output()
        .expect("lb runs");
    assert_eq!(out.status.code(), Some(1), "findings exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"R01\""), "R01 in {stdout}");
    assert!(stdout.contains("src/planted.rs"), "file in {stdout}");
    std::fs::remove_dir_all(&dir).ok();

    // Bad usage → exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_lb"))
        .args(["lint", "--format", "yaml"])
        .output()
        .expect("lb runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}
