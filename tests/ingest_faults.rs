//! Deterministic fault injection for the ingestion path: every fault —
//! mid-run feed hang-up, out-of-order round tags, zero-capacity channels,
//! torn/truncated trace tails, poisoned (panicking/failing) producers —
//! must terminate with a typed error or a documented degradation, never a
//! deadlock and never corrupted engine state. CI runs this suite in release
//! mode under the `merge-ingestion` job's `timeout-minutes`, so a hang here
//! fails loudly twice over.

use lb_bench::dynamic::Session;
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RoundEvents, TaskPicker};
use lb_core::ingest;
use lb_core::ingest::merge::MergeSession;
use lb_core::{CoreError, InitialLoad, Speeds, Task, TaskId};
use lb_graph::{generators, AlphaScheme};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, ReadSource, RoundSource, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec, TraceSource,
};
use std::path::PathBuf;
use std::time::Duration;

fn engine() -> FlowImitation<Fos> {
    let g = generators::torus(4, 4).unwrap();
    let speeds = Speeds::uniform(16);
    let initial = InitialLoad::single_source(16, 0, 64);
    let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
    FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
}

fn small_scenario() -> Scenario {
    Scenario {
        name: "ingest_faults".into(),
        seed: 7,
        rounds: 30,
        sample_every: 10,
        algorithm: AlgorithmSpec::Alg1,
        model: ModelSpec::Fos,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 16,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 4,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: Vec::new(),
        shards: 1,
        federation: 1,
    }
}

fn temp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lb_ingest_faults_{tag}.trace.jsonl"))
}

/// Fault: one of two live feeds hangs up mid-run (its thread returns after
/// 10 rounds). Documented degradation: the merge continues over the
/// remaining feed, the run completes, and the short feed's contribution is
/// exactly its prefix.
#[test]
fn mid_run_feed_hangup_degrades_to_remaining_feeds() {
    let mut consumers = Vec::new();
    let mut handles = Vec::new();
    for (feed, rounds_sent) in [(0u64, 30u64), (1, 10)] {
        let (mut tx, rx) = ingest::bounded(2);
        consumers.push(rx);
        handles.push(std::thread::spawn(move || {
            for round in 0..rounds_sent {
                let mut batch = tx.buffer();
                let task = Task::new(TaskId(1_000 * (feed + 1) + round), 1);
                batch
                    .arrivals
                    .push(((feed as usize + round as usize) % 16, task));
                if tx.send(round, batch).is_err() {
                    return;
                }
            }
            // Returning drops the producer: a clean mid-run hang-up.
        }));
    }
    let mut session = MergeSession::new(consumers);
    let mut alg1 = engine();
    for round in 0..35u64 {
        let report = session.apply_round(round, &mut alg1).unwrap();
        let expect = match round {
            0..=9 => 2,
            10..=29 => 1,
            _ => 0,
        };
        assert_eq!(report.arrived_tasks, expect, "round {round}");
        alg1.step();
    }
    assert!(session.ended(), "both feeds drained");
    assert_eq!(session.report().arrived_tasks, 40);
    let reports = session.feed_reports();
    assert_eq!(reports[0].batches, 30);
    assert_eq!(
        reports[1].batches, 10,
        "the short feed contributed its prefix"
    );
    for handle in handles {
        handle.join().unwrap();
    }
}

/// Fault: a feed's batch is tagged with a round earlier than the one being
/// applied. The session must return a typed error and leave the engine
/// untouched — error, not corruption.
#[test]
fn out_of_order_round_tags_error_without_corruption() {
    let (tx, rx) = bounded_with_batch(5);
    let mut session = MergeSession::new(vec![rx]);
    let mut alg1 = engine();
    // Rounds 0..=4 are legitimately empty (the batch is tagged 5).
    for round in 0..5u64 {
        let report = session.apply_round(round, &mut alg1).unwrap();
        assert_eq!(report.arrived_tasks, 0);
    }
    let loads_before = alg1.loads();
    // Asking for round 7 with round 5 still pending is the violation.
    let err = session.apply_round(7, &mut alg1).unwrap_err();
    assert!(
        matches!(err, CoreError::InvalidParameter { .. }),
        "typed error, got {err:?}"
    );
    assert!(err.to_string().contains("protocol violation"), "{err}");
    assert_eq!(alg1.loads(), loads_before, "engine state untouched");
    drop(tx);
}

/// A channel whose producer already sent one batch tagged `round`.
fn bounded_with_batch(round: u64) -> (ingest::EventProducer, ingest::EventConsumer) {
    let (mut tx, rx) = ingest::bounded(4);
    let mut batch = tx.buffer();
    batch.arrivals.push((3, Task::new(TaskId(900), 1)));
    tx.send(round, batch).unwrap();
    (tx, rx)
}

/// Fault: a zero-capacity channel. Documented degradation: the capacity
/// clamps to 1, so producers strictly alternate with the consumer — slower,
/// never deadlocked.
#[test]
fn zero_capacity_channels_never_deadlock() {
    let mut consumers = Vec::new();
    let mut handles = Vec::new();
    for feed in 0..2u64 {
        let (mut tx, rx) = ingest::bounded(0);
        consumers.push(rx);
        handles.push(std::thread::spawn(move || {
            for round in 0..50u64 {
                let mut batch = tx.buffer();
                let task = Task::new(TaskId(2_000 * (feed + 1) + round), 1);
                batch.arrivals.push((feed as usize, task));
                if tx.send(round, batch).is_err() {
                    return;
                }
            }
        }));
    }
    let mut session = MergeSession::new(consumers);
    let mut alg1 = engine();
    for round in 0..50u64 {
        session.apply_round(round, &mut alg1).unwrap();
        alg1.step();
    }
    assert_eq!(session.report().arrived_tasks, 100);
    let reports = session.feed_reports();
    assert!(
        reports.iter().all(|r| r.channel.high_water == 1),
        "zero capacity clamps to one in-flight batch"
    );
    for handle in handles {
        handle.join().unwrap();
    }
}

/// Fault: the trace file stops growing without an `end` record — first with
/// a torn (mid-record) tail, then cut at a line boundary. `TraceSource`
/// must time out with a typed truncation error, and the driver-level replay
/// must terminate with that error rather than deadlock.
#[test]
fn torn_and_truncated_trace_tails_fail_loudly() {
    let scenario = small_scenario();
    let path = temp_trace("torn_tail");
    Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("records");
    let text = std::fs::read_to_string(&path).expect("trace text");

    // Torn tail: drop the end record and cut the last round record mid-line.
    let torn = &text[..text.len() - 30];
    std::fs::write(&path, torn).unwrap();
    let source = TraceSource::open_with(&path, Duration::from_millis(50), Duration::from_millis(5))
        .expect("header parses");
    let err = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect_err("torn tail errors");
    assert!(err.to_string().contains("truncated?"), "{err}");

    // Truncated at a line boundary (complete lines, no end record).
    let lines: Vec<&str> = text.lines().collect();
    let cut = lines[..lines.len() - 1].join("\n") + "\n";
    std::fs::write(&path, cut).unwrap();
    let source = TraceSource::open_with(&path, Duration::from_millis(50), Duration::from_millis(5))
        .expect("header parses");
    let err = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect_err("truncation errors");
    assert!(err.to_string().contains("without an end record"), "{err}");

    // The framed-reader source reports the same class of fault at EOF.
    let bytes = lines[..lines.len() - 1].join("\n").into_bytes();
    let source = ReadSource::new(std::io::Cursor::new(bytes)).expect("header parses");
    let err = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect_err("stream truncation errors");
    assert!(err.to_string().contains("truncated?"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// A source that produces a few healthy rounds, then poisons its producer
/// thread (panics) or fails with its own error.
struct PoisonedSource {
    scenario: Scenario,
    rounds_before_fault: u64,
    next: u64,
    panic: bool,
}

impl RoundSource for PoisonedSource {
    fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    fn next_round(&mut self, out: &mut RoundEvents) -> Result<Option<u64>, String> {
        if self.next == self.rounds_before_fault {
            if self.panic {
                // The panic unwinds the producer thread; dropping the
                // channel's sender half un-blocks the engine (event-free
                // remainder), and the driver reports the panic on join.
                panic!("poisoned producer (deliberate test panic — expected in output)");
            }
            return Err("simulated I/O failure on the producer".into());
        }
        out.clear();
        out.arrivals.push((
            (self.next % 16) as usize,
            Task::new(TaskId(5_000 + self.next), 1),
        ));
        self.next += 1;
        Ok(Some(self.next - 1))
    }
}

/// Fault: the producer thread panics mid-run. The run must terminate with a
/// typed error (not deadlock): the panic's `Drop` releases the channel, the
/// engine finishes the remaining rounds event-free, and the join surfaces
/// the poisoned producer.
#[test]
fn poisoned_producer_panics_become_errors_not_deadlocks() {
    let source = PoisonedSource {
        scenario: small_scenario(),
        rounds_before_fault: 3,
        next: 0,
        panic: true,
    };
    let err = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect_err("panic surfaces");
    assert!(err.to_string().contains("panicked"), "{err}");
}

/// Fault: the producer's source fails with its own error (torn tails and
/// stalled writers take this path). The error propagates verbatim.
#[test]
fn producer_source_errors_propagate_verbatim() {
    let source = PoisonedSource {
        scenario: small_scenario(),
        rounds_before_fault: 3,
        next: 0,
        panic: false,
    };
    let err = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect_err("source error surfaces");
    assert!(err.to_string().contains("simulated I/O failure"), "{err}");
}
