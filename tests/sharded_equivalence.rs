//! Sequential ≡ sharded: the acceptance suite of the sharded engine.
//!
//! For every engine combination (Algorithm 1/2 × FOS/SOS twin) a sequential
//! engine and a sharded clone are driven through the same rounds — including
//! dynamic arrivals, completions and topology churn — and must produce
//! **bit-identical** trajectories: per-node loads, real loads, twin
//! cumulative flows and infinite-source counters, every round.
//!
//! The shard count is taken from `LB_BENCH_SHARDS` when set (the CI job runs
//! with `LB_BENCH_SHARDS=4`); otherwise both a small and a prime shard count
//! are exercised, plus an oversharded (more shards than nodes) case.

use lb_core::continuous::{ContinuousRunner, DimensionExchange, Fos, Sos};
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::{InitialLoad, ShardedExecutor, Speeds, Task, TaskId};
use lb_graph::{generators, AlphaScheme, Graph};
use std::sync::Arc;

/// Shard counts to exercise: the `LB_BENCH_SHARDS` override, or {2, 5}.
fn shard_counts() -> Vec<usize> {
    match std::env::var("LB_BENCH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(s) => vec![s],
        None => vec![2, 5],
    }
}

fn fos(graph: &Arc<Graph>, speeds: &Speeds) -> Fos {
    Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).unwrap()
}

fn sos(graph: &Arc<Graph>, speeds: &Speeds) -> Sos {
    Sos::new(
        Arc::clone(graph),
        speeds,
        AlphaScheme::MaxDegreePlusOne,
        1.6,
    )
    .unwrap()
}

/// A deterministic weighted workload (unit weights for `unit_only`).
fn workload(n: usize, unit_only: bool) -> InitialLoad {
    let mut tasks: Vec<Vec<Task>> = Vec::with_capacity(n);
    let mut id = 0u64;
    for i in 0..n {
        let count = (i * 7 + 3) % 13 + if i == 0 { 40 } else { 2 };
        let mut node_tasks = Vec::new();
        for k in 0..count {
            let weight = if unit_only { 1 } else { (k % 3 + 1) as u64 };
            node_tasks.push(Task::new(TaskId(id), weight));
            id += 1;
        }
        tasks.push(node_tasks);
    }
    InitialLoad::from_tasks(tasks)
}

/// A deterministic per-round arrival/completion mix (no RNG: both engines
/// must receive byte-identical event batches).
fn fill_events(events: &mut RoundEvents, round: usize, n: usize, next_id: &mut u64, wmax: u64) {
    events.clear();
    for k in 0..3usize {
        events.completions.push(((round * 13 + 7 * k) % n, 2));
    }
    for k in 0..3u64 {
        let weight = if wmax <= 1 { 1 } else { k % wmax + 1 };
        let task = Task::new(TaskId(*next_id), weight);
        *next_id += 1;
        events.arrivals.push(((round * 31 + k as usize) % n, task));
    }
}

/// Drives `sequential` (plain steps) and `sharded` (sharded steps) through
/// `rounds` rounds with events, asserting bit-identical state every round.
macro_rules! drive_pair {
    ($sequential:expr, $sharded:expr, $exec:expr, $rounds:expr, $wmax:expr, $label:expr) => {{
        let mut events = RoundEvents::default();
        let mut next_id = 1_000_000u64;
        let mut next_id_sharded = 1_000_000u64;
        for round in 0..$rounds {
            let n = $sequential.graph().node_count();
            fill_events(&mut events, round, n, &mut next_id, $wmax);
            $sequential.apply_events(&events).unwrap();
            fill_events(&mut events, round, n, &mut next_id_sharded, $wmax);
            $sharded.apply_events(&events).unwrap();
            $sequential.step();
            $sharded.step_sharded($exec);
            assert_eq!(
                $sequential.loads(),
                $sharded.loads(),
                "{}: loads diverged at round {round}",
                $label
            );
            assert_eq!(
                $sequential.real_loads(),
                $sharded.real_loads(),
                "{}: real loads diverged at round {round}",
                $label
            );
            assert_eq!(
                $sequential.continuous().cumulative_flows(),
                $sharded.continuous().cumulative_flows(),
                "{}: twin cumulative flows diverged at round {round}",
                $label
            );
            assert_eq!(
                $sequential.dummy_created(),
                $sharded.dummy_created(),
                "{}: dummy counters diverged at round {round}",
                $label
            );
        }
    }};
}

#[test]
fn alg1_fos_sharded_matches_sequential_under_events() {
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, false);
        for picker in [TaskPicker::Fifo, TaskPicker::LargestFirst] {
            let mut sequential =
                FlowImitation::new(fos(&graph, &speeds), &initial, speeds.clone(), picker).unwrap();
            let mut sharded = sequential.clone();
            let mut exec = ShardedExecutor::new(shards);
            drive_pair!(
                sequential,
                sharded,
                &mut exec,
                60,
                3,
                format!("alg1(fos) {picker:?} shards={shards}")
            );
        }
    }
}

#[test]
fn alg1_sos_sharded_matches_sequential_under_events() {
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::hypercube(5).unwrap());
        let speeds = Speeds::uniform(32);
        let initial = workload(32, false);
        let mut sequential = FlowImitation::new(
            sos(&graph, &speeds),
            &initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )
        .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        drive_pair!(
            sequential,
            sharded,
            &mut exec,
            60,
            3,
            format!("alg1(sos) shards={shards}")
        );
    }
}

#[test]
fn alg2_fos_sharded_matches_sequential_under_events() {
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, true);
        let mut sequential =
            RandomizedImitation::new(fos(&graph, &speeds), &initial, speeds.clone(), 0xA5A5)
                .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        drive_pair!(
            sequential,
            sharded,
            &mut exec,
            60,
            1,
            format!("alg2(fos) shards={shards}")
        );
    }
}

#[test]
fn alg2_sos_sharded_matches_sequential_under_events() {
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::hypercube(5).unwrap());
        let speeds = Speeds::uniform(32);
        let initial = workload(32, true);
        let mut sequential =
            RandomizedImitation::new(sos(&graph, &speeds), &initial, speeds.clone(), 0x5A5A)
                .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        drive_pair!(
            sequential,
            sharded,
            &mut exec,
            60,
            1,
            format!("alg2(sos) shards={shards}")
        );
    }
}

#[test]
fn sharded_equivalence_survives_topology_churn() {
    // Rewire (same size, new Arc) and resize (orphan adoption on node 0)
    // mid-run: the executor must rebind its plan and stay bit-identical.
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, false);
        let mut sequential = FlowImitation::new(
            fos(&graph, &speeds),
            &initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )
        .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        let label = format!("alg1(fos) churn shards={shards}");
        drive_pair!(sequential, sharded, &mut exec, 25, 3, label);

        // Rewire: rebuild the same family (fresh Arc ⇒ fresh shard plan).
        let rewired: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let carried = Speeds::uniform(36);
        sequential
            .replace_topology(fos(&rewired, &carried))
            .unwrap();
        sharded.replace_topology(fos(&rewired, &carried)).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 25, 3, label);

        // Resize: shrink to 5×5 (orphans re-queue on node 0), then continue.
        let smaller: Arc<Graph> = Arc::new(generators::torus(5, 5).unwrap());
        let carried = Speeds::uniform(25);
        sequential
            .replace_topology(fos(&smaller, &carried))
            .unwrap();
        sharded.replace_topology(fos(&smaller, &carried)).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 25, 3, label);
    }

    // Algorithm 2 under the same churn schedule.
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, true);
        let mut sequential =
            RandomizedImitation::new(fos(&graph, &speeds), &initial, speeds.clone(), 77).unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        let label = format!("alg2(fos) churn shards={shards}");
        drive_pair!(sequential, sharded, &mut exec, 25, 1, label);
        let smaller: Arc<Graph> = Arc::new(generators::torus(5, 5).unwrap());
        let carried = Speeds::uniform(25);
        sequential
            .replace_topology(fos(&smaller, &carried))
            .unwrap();
        sharded.replace_topology(fos(&smaller, &carried)).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 25, 1, label);
    }
}

#[test]
fn resize_below_shard_count_stays_bit_identical() {
    // Regression: shrinking mid-run to fewer nodes than the executor has
    // shards must clamp the rebound `ShardPlan` (empty tail shards behave as
    // no-ops) instead of panicking or diverging. 8 shards, 36 → 4 nodes.
    let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
    let speeds = Speeds::uniform(36);
    let initial = workload(36, false);
    for picker in [TaskPicker::Fifo, TaskPicker::LargestFirst] {
        let mut sequential =
            FlowImitation::new(fos(&graph, &speeds), &initial, speeds.clone(), picker).unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(8);
        let label = format!("alg1(fos) {picker:?} shrink-below-shards");
        drive_pair!(sequential, sharded, &mut exec, 15, 3, label);

        // Shrink far below the shard count: every orphaned task re-queues on
        // node 0 and the plan rebind must tolerate n < S.
        let tiny: Arc<Graph> = Arc::new(generators::cycle(4).unwrap());
        let carried = Speeds::uniform(4);
        sequential.replace_topology(fos(&tiny, &carried)).unwrap();
        sharded.replace_topology(fos(&tiny, &carried)).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 30, 3, label);
    }
}

#[test]
fn heap_picker_orphan_requeue_after_shrink_is_deterministic() {
    // Audit pin: `resize` re-queues orphaned tasks on node 0. For the heap
    // picker (LargestFirst) the re-queue order feeds directly into pick
    // order, so it must be deterministic across runs and identical under
    // sharded execution. Two independent replays of the same schedule must
    // land on bit-identical state.
    let run_schedule = |shards: usize| {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, false);
        let mut sequential = FlowImitation::new(
            fos(&graph, &speeds),
            &initial,
            speeds.clone(),
            TaskPicker::LargestFirst,
        )
        .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        let label = format!("alg1(fos) LargestFirst shrink shards={shards}");
        drive_pair!(sequential, sharded, &mut exec, 20, 3, label);
        let smaller: Arc<Graph> = Arc::new(generators::torus(4, 4).unwrap());
        let carried = Speeds::uniform(16);
        sequential
            .replace_topology(fos(&smaller, &carried))
            .unwrap();
        sharded.replace_topology(fos(&smaller, &carried)).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 30, 3, label);
        (
            sequential.loads(),
            sequential.real_loads(),
            sequential.continuous().cumulative_flows().to_vec(),
            sequential.dummy_created(),
        )
    };
    for shards in shard_counts() {
        let first = run_schedule(shards);
        let second = run_schedule(shards);
        assert_eq!(
            first, second,
            "heap-picker orphan re-queue is not deterministic (shards={shards})"
        );
    }
}

#[test]
fn delta_patched_topology_matches_full_rebuild_when_sharded() {
    // The delta-churn path: patching the diffusion process in place
    // (`Fos::patched`) must be bit-identical to rebuilding it from scratch
    // (`Fos::new`), sequentially and through the sharded executor.
    use lb_graph::GraphDelta;
    for shards in shard_counts() {
        let graph: Arc<Graph> = Arc::new(generators::torus(6, 6).unwrap());
        let speeds = Speeds::uniform(36);
        let initial = workload(36, false);
        let mut sequential = FlowImitation::new(
            fos(&graph, &speeds),
            &initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )
        .unwrap();
        let mut sharded = sequential.clone();
        let mut exec = ShardedExecutor::new(shards);
        let label = format!("alg1(fos) delta-patch shards={shards}");
        drive_pair!(sequential, sharded, &mut exec, 20, 3, label);

        // Rewire two chords in, one grid edge out, via the delta path.
        let delta = GraphDelta::new(36, [(0, 14), (7, 29)], [(0, 1)]).unwrap();
        let rewired: Arc<Graph> = Arc::new(graph.apply_delta(&delta).unwrap());
        // The full-rebuild reference forks from the same pre-churn state.
        let mut rebuilt = sequential.clone();
        rebuilt.replace_topology(fos(&rewired, &speeds)).unwrap();
        let patched_seq = sequential
            .continuous()
            .process()
            .patched(Arc::clone(&rewired), &delta)
            .unwrap();
        let patched_shd = sharded
            .continuous()
            .process()
            .patched(Arc::clone(&rewired), &delta)
            .unwrap();
        sequential.replace_topology(patched_seq).unwrap();
        sharded.replace_topology(patched_shd).unwrap();
        drive_pair!(sequential, sharded, &mut exec, 20, 3, label);

        // Drive the rebuilt reference through the identical event stream
        // (drive_pair! regenerates it deterministically) and require the
        // patched engine to have landed on the same bits.
        let mut events = RoundEvents::default();
        let mut next_id = 1_000_000u64;
        for round in 0..20 {
            fill_events(&mut events, round, 36, &mut next_id, 3);
            rebuilt.apply_events(&events).unwrap();
            rebuilt.step();
        }
        assert_eq!(sequential.loads(), rebuilt.loads(), "{label}: loads");
        assert_eq!(
            sequential.continuous().cumulative_flows(),
            rebuilt.continuous().cumulative_flows(),
            "{label}: twin flows"
        );
        assert_eq!(
            sequential.dummy_created(),
            rebuilt.dummy_created(),
            "{label}: dummy counters"
        );
    }
}

#[test]
fn more_shards_than_nodes_still_bit_identical() {
    // Empty shards must behave as no-ops.
    let graph: Arc<Graph> = Arc::new(generators::cycle(9).unwrap());
    let speeds = Speeds::uniform(9);
    let initial = InitialLoad::single_source(9, 0, 90);
    let mut sequential = FlowImitation::new(
        fos(&graph, &speeds),
        &initial,
        speeds.clone(),
        TaskPicker::Fifo,
    )
    .unwrap();
    let mut sharded = sequential.clone();
    let mut exec = ShardedExecutor::new(64);
    for round in 0..80 {
        sequential.step();
        sharded.step_sharded(&mut exec);
        assert_eq!(sequential.loads(), sharded.loads(), "round {round}");
    }
}

#[test]
fn continuous_runner_sharded_matches_sequential() {
    // The twin alone, FOS and SOS kernels: loads, cumulative flows and the
    // negative-load watermark all stay bit-identical.
    let graph: Arc<Graph> = Arc::new(generators::torus(7, 5).unwrap());
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);
    let initial: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
    for shards in shard_counts() {
        let mut seq_fos = ContinuousRunner::new(fos(&graph, &speeds), initial.clone());
        let mut shd_fos = ContinuousRunner::new(fos(&graph, &speeds), initial.clone());
        let mut seq_sos = ContinuousRunner::new(sos(&graph, &speeds), initial.clone());
        let mut shd_sos = ContinuousRunner::new(sos(&graph, &speeds), initial.clone());
        let mut exec_fos = ShardedExecutor::new(shards);
        let mut exec_sos = ShardedExecutor::new(shards);
        for round in 0..100 {
            seq_fos.step();
            shd_fos.step_sharded(&mut exec_fos);
            seq_sos.step();
            shd_sos.step_sharded(&mut exec_sos);
            assert_eq!(seq_fos.loads(), shd_fos.loads(), "fos round {round}");
            assert_eq!(seq_sos.loads(), shd_sos.loads(), "sos round {round}");
            assert_eq!(
                seq_fos.cumulative_flows(),
                shd_fos.cumulative_flows(),
                "fos flows round {round}"
            );
            assert_eq!(
                seq_sos.cumulative_flows(),
                shd_sos.cumulative_flows(),
                "sos flows round {round}"
            );
        }
        assert_eq!(seq_sos.min_load_seen(), shd_sos.min_load_seen());
    }
}

#[test]
fn matching_processes_fall_back_to_sequential_twin() {
    // DimensionExchange does not implement the sharded kernel protocol; a
    // sharded discrete step must still work (twin steps sequentially) and
    // match the fully sequential engine.
    let graph: Arc<Graph> = Arc::new(generators::hypercube(4).unwrap());
    let speeds = Speeds::uniform(16);
    let initial = workload(16, false);
    let de = DimensionExchange::with_greedy_coloring(Arc::clone(&graph), &speeds).unwrap();
    let mut sequential =
        FlowImitation::new(de, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
    let mut sharded = sequential.clone();
    let mut exec = ShardedExecutor::new(3);
    for round in 0..60 {
        sequential.step();
        sharded.step_sharded(&mut exec);
        assert_eq!(sequential.loads(), sharded.loads(), "round {round}");
        assert_eq!(
            sequential.dummy_created(),
            sharded.dummy_created(),
            "round {round}"
        );
    }
}
