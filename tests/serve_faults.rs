//! Fault injection for the `lb serve` socket front-end: a client that drops
//! mid-stream degrades the run (it still finishes), a client that
//! reconnects within the window resumes where it left off and the served
//! run stays **byte-identical** to the synchronous reference at the
//! acceptance shard counts {1, 4}, and a handshake whose header embeds the
//! wrong scenario is rejected with a typed error while the engine keeps
//! serving the other feeds.

use lb_bench::dynamic::Session;
use lb_bench::error::BenchError;
use lb_bench::serve::{push_trace, serve, PushOptions, ServeOptions};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, Scenario, ServiceSpec, SpeedSpec,
    TokenDistribution, TopologySpec, Trace,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn serve_scenario() -> Scenario {
    Scenario {
        name: "serve_faults".into(),
        seed: 7,
        rounds: 12,
        sample_every: 4,
        algorithm: AlgorithmSpec::Alg1,
        model: ModelSpec::Fos,
        topology: TopologySpec {
            family: "torus".into(),
            target_n: 16,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 4,
            pad: PadSpec::Degree,
        },
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        churn: Vec::new(),
        shards: 1,
        federation: 1,
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lb_serve_faults_{tag}_{}", std::process::id()))
}

/// Records the scenario's event stream once; the header embeds the
/// effective scenario, which is what the server authenticates against.
fn recorded_trace(tag: &str) -> (Trace, String) {
    let scenario = serve_scenario();
    let path = temp_path(&format!("{tag}.trace.jsonl"));
    let reference = Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("reference run records");
    let trace = Trace::load(&path).expect("trace loads");
    std::fs::remove_file(&path).ok();
    (trace, reference.to_json().render_pretty())
}

/// Polls the `--listen-info` file the server writes once its socket is up,
/// returning the bound address.
fn wait_for_addr(info: &Path) -> String {
    for _ in 0..500 {
        if let Ok(text) = std::fs::read_to_string(info) {
            if let Ok(json) = lb_analysis::Json::parse(text.trim()) {
                if let Some(addr) = json.get("addr").and_then(lb_analysis::Json::as_str) {
                    return addr.to_string();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never published its address to {}", info.display());
}

/// Reconnects under a feed name, retrying while the server is still
/// parking the dropped connection (the old pump may not have observed the
/// hang-up yet, in which case the name is briefly "already connected").
fn reconnect(addr: &str, trace: &Trace, options: &PushOptions) -> lb_bench::serve::PushReport {
    for _ in 0..200 {
        match push_trace(addr, trace, options) {
            Ok(report) => return report,
            Err(BenchError::Protocol(reason)) if reason.contains("already connected") => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => panic!("reconnect failed: {err}"),
        }
    }
    panic!("feed {:?} never came free for reconnect", options.feed);
}

/// A client that drops mid-stream and never comes back: once the reconnect
/// window expires the feed closes and the run degrades — the remaining
/// rounds see no events from it — but still completes deterministically.
#[test]
fn dropped_client_degrades_and_the_run_finishes() {
    let scenario = serve_scenario();
    let (trace, _) = recorded_trace("degrade");
    let info = temp_path("degrade.addr.json");
    let options = ServeOptions {
        reconnect_timeout: Duration::from_millis(200),
        listen_info: Some(info.clone()),
        ..ServeOptions::default()
    };

    let server = {
        let scenario = scenario.clone();
        std::thread::spawn(move || serve(&scenario, &options, |_| {}))
    };
    let addr = wait_for_addr(&info);

    let mut push = PushOptions::feed("flaky");
    push.abort_after = Some(2);
    let report = push_trace(&addr, &trace, &push).expect("partial push connects");
    assert!(report.aborted, "the client really dropped mid-stream");
    assert_eq!(report.rounds_sent, 2);

    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(
        outcome.last().round,
        scenario.rounds,
        "the degraded run still reaches the horizon"
    );
    // Only the two delivered rounds' arrivals made it in.
    let full = Session::from_scenario(&scenario).run(|_| {}).expect("runs");
    assert!(
        outcome.last().arrived_weight < full.last().arrived_weight,
        "the dropped tail of the stream never arrived"
    );
    std::fs::remove_file(&info).ok();
}

/// The tentpole contract: two striped clients, one killed mid-stream and
/// reconnected, produce a served run byte-identical to the synchronous
/// reference — at both acceptance shard counts.
#[test]
fn reconnected_client_resumes_byte_identically_at_acceptance_shards() {
    let scenario = serve_scenario();
    let (trace, _) = recorded_trace("reconnect");

    for shards in [1usize, 4] {
        let reference = Session::from_scenario(&scenario)
            .shards(shards)
            .run(|_| {})
            .expect("sync reference runs");
        let reference_doc = reference.to_json().render_pretty();

        let info = temp_path(&format!("reconnect_{shards}.addr.json"));
        let options = ServeOptions {
            clients: 2,
            shards: Some(shards),
            reconnect_timeout: Duration::from_secs(10),
            listen_info: Some(info.clone()),
            ..ServeOptions::default()
        };
        let server = {
            let scenario = scenario.clone();
            std::thread::spawn(move || serve(&scenario, &options, |_| {}))
        };
        let addr = wait_for_addr(&info);

        // Feed "even" carries the even-indexed round records and crashes
        // after the first one; feed "odd" carries the rest uninterrupted.
        let odd_client = {
            let trace = trace.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut push = PushOptions::feed("odd");
                push.stride = (2, 1);
                push_trace(&addr, &trace, &push).expect("odd feed streams")
            })
        };
        let mut push = PushOptions::feed("even");
        push.stride = (2, 0);
        push.abort_after = Some(1);
        let crashed = push_trace(&addr, &trace, &push).expect("even feed connects");
        assert!(crashed.aborted);
        assert_eq!(crashed.rounds_sent, 1);

        // Come back under the same name: the welcome's last_round makes the
        // client skip what the server already admitted.
        push.abort_after = None;
        let resumed = reconnect(&addr, &trace, &push);
        assert!(
            resumed.resumed_after.is_some(),
            "the welcome carried the resume point"
        );

        odd_client.join().expect("odd client");
        let outcome = server.join().expect("server thread").expect("serve run");
        assert_eq!(
            reference_doc,
            outcome.to_json().render_pretty(),
            "shards={shards}: served run diverged from the sync reference"
        );
        let stats = outcome.ingest.expect("served runs report ingest stats");
        let feeds = stats
            .get("feeds")
            .and_then(lb_analysis::Json::as_array)
            .expect("per-feed stats");
        assert_eq!(feeds.len(), 2, "one merge feed per connection name");
        std::fs::remove_file(&info).ok();
    }
}

/// A handshake embedding the wrong effective scenario is refused with a
/// typed rejection before touching the engine; a correct client afterwards
/// is served normally and the run completes byte-identical to sync.
#[test]
fn mismatched_header_is_rejected_while_the_engine_keeps_serving() {
    let scenario = serve_scenario();
    let (trace, reference_doc) = recorded_trace("mismatch");
    let info = temp_path("mismatch.addr.json");
    let options = ServeOptions {
        listen_info: Some(info.clone()),
        ..ServeOptions::default()
    };
    let server = {
        let scenario = scenario.clone();
        std::thread::spawn(move || serve(&scenario, &options, |_| {}))
    };
    let addr = wait_for_addr(&info);

    // A trace recorded at a different seed: same shape, wrong scenario.
    let mut reseeded = trace.scenario.clone();
    reseeded.seed = 9999;
    let imposter = Trace {
        scenario: reseeded,
        rounds: Vec::new(),
    };
    let err = push_trace(&addr, &imposter, &PushOptions::feed("imposter"))
        .expect_err("mismatched header must be rejected");
    assert!(matches!(err, BenchError::Protocol(_)), "{err:?}");
    assert!(err.to_string().contains("scenario mismatch"), "{err}");

    // The rejection never reached the engine: a good client is served and
    // the run is still byte-identical to the sync reference.
    let report = push_trace(&addr, &trace, &PushOptions::feed("good")).expect("good feed streams");
    assert!(!report.aborted);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(reference_doc, outcome.to_json().render_pretty());
    std::fs::remove_file(&info).ok();
}
