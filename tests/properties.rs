//! Property-based tests (proptest) for the core invariants of the
//! flow-imitation framework:
//!
//! * load conservation of the continuous and discrete processes,
//! * Observation 4: per-edge flow deviation stays below `w_max`,
//! * additivity and the terminating property of FOS (Lemma 1),
//! * the Theorem 3 discrepancy bound under the sufficient-load condition,
//! * diffusion-matrix stochasticity for arbitrary speed assignments.

use lb_core::continuous::{ContinuousProcess, ContinuousRunner, Fos};
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RandomizedImitation, TaskPicker};
use lb_core::{metrics, InitialLoad, Speeds, Task, TaskId, TaskQueue};
use lb_graph::{generators, AlphaScheme, DiffusionMatrix, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small connected graph from a mix of families.
fn small_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3u32..=5).prop_map(|d| generators::hypercube(d).expect("hypercube builds")),
        (3usize..=6, 3usize..=6)
            .prop_map(|(r, c)| generators::torus(r.max(2), c.max(2)).expect("torus builds")),
        (6usize..=20).prop_map(|n| generators::cycle(n).expect("cycle builds")),
        (4usize..=10).prop_map(|n| generators::complete(n).expect("complete builds")),
        (2usize..=4, 3usize..=6)
            .prop_map(|(k, c)| generators::ring_of_cliques(c, k.max(2)).expect("ring builds")),
        (10usize..=40, any::<u64>()).prop_map(|(n, seed)| {
            let n = if n % 2 == 1 { n + 1 } else { n };
            let mut rng = StdRng::seed_from_u64(seed);
            generators::random_regular(n, 3, &mut rng).expect("regular graph builds")
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The diffusion matrix is row-stochastic for every graph and speed
    /// assignment.
    #[test]
    fn diffusion_matrix_is_stochastic(graph in small_graph(), seed in any::<u64>()) {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let speeds: Vec<f64> = (0..n).map(|_| {
            use rand::Rng;
            rng.gen_range(1..=4) as f64
        }).collect();
        let p = DiffusionMatrix::new(&graph, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        prop_assert!(p.is_stochastic(&graph, 1e-9));
    }

    /// Continuous FOS conserves total load and never produces negative load.
    #[test]
    fn continuous_fos_conserves_load(
        graph in small_graph(),
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<f64> = (0..n).map(|_| {
            use rand::Rng;
            rng.gen_range(0..100) as f64
        }).collect();
        let total: f64 = initial.iter().sum();
        let speeds = Speeds::uniform(n);
        let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut runner = ContinuousRunner::new(fos, initial);
        runner.run(60);
        prop_assert!((runner.loads().iter().sum::<f64>() - total).abs() < 1e-6);
        prop_assert!(runner.no_negative_load(1e-9));
    }

    /// FOS is additive (Definition 3): flows of x' + x'' are the sums of the
    /// individual flows, for arbitrary splits.
    #[test]
    fn fos_is_additive(
        graph in small_graph(),
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let x1: Vec<f64> = (0..n).map(|_| rng.gen_range(0..50) as f64).collect();
        let x2: Vec<f64> = (0..n).map(|_| rng.gen_range(0..50) as f64).collect();
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let speeds = Speeds::uniform(n);
        let mk = |x: Vec<f64>| {
            let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            ContinuousRunner::new(fos, x)
        };
        let (mut a, mut b, mut c) = (mk(x1), mk(x2), mk(sum));
        for _ in 0..15 {
            let fa = a.step();
            let fb = b.step();
            let fc = c.step();
            for e in 0..graph.edge_count() {
                prop_assert!((fc[e].net() - fa[e].net() - fb[e].net()).abs() < 1e-7);
            }
        }
    }

    /// FOS is terminating (Definition 2): started balanced, no net flow ever
    /// crosses any edge.
    #[test]
    fn fos_is_terminating(graph in small_graph(), level in 1u64..20) {
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let balanced = vec![level as f64; n];
        let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut runner = ContinuousRunner::new(fos, balanced);
        for _ in 0..10 {
            let flows = runner.step();
            for f in flows {
                prop_assert!(f.net().abs() < 1e-9);
            }
        }
    }

    /// Observation 4: Algorithm 1 keeps every per-edge cumulative deviation
    /// below w_max (= 1 for tokens), for arbitrary graphs and loads.
    #[test]
    fn alg1_flow_deviation_below_wmax(
        graph in small_graph(),
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_range(0..60)).collect();
        let initial = InitialLoad::from_token_counts(counts);
        let speeds = Speeds::uniform(n);
        let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();
        for _ in 0..40 {
            alg1.step();
            prop_assert!(alg1.max_flow_deviation() < 1.0 + 1e-9);
        }
    }

    /// Conservation of real workload for both flow-imitation algorithms, with
    /// arbitrary initial token placements and speeds.
    #[test]
    fn flow_imitation_conserves_real_load(
        graph in small_graph(),
        seed in any::<u64>(),
    ) {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let counts: Vec<u64> = (0..n).map(|_| rng.gen_range(0..40)).collect();
        let speed_values: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=3)).collect();
        let initial = InitialLoad::from_token_counts(counts);
        let total = initial.total_weight() as f64;
        let speeds = Speeds::new(speed_values).unwrap();

        let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1.run(40);
        prop_assert!((alg1.real_loads().iter().sum::<f64>() - total).abs() < 1e-9);

        let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg2 = RandomizedImitation::new(fos, &initial, speeds, seed).unwrap();
        alg2.run(40);
        prop_assert!((alg2.real_loads().iter().sum::<f64>() - total).abs() < 1e-9);
    }

    /// `TaskQueue` under churn: with tasks inserted mid-run (as dynamic
    /// arrivals do), every pop still matches the reference semantics of
    /// `TaskPicker::pick_reference` — including tie-breaking — and the
    /// incremental weight total never drifts, for all three policies.
    #[test]
    fn task_queue_pops_match_reference_under_churn(seed in any::<u64>()) {
        for policy in [
            TaskPicker::Fifo,
            TaskPicker::LargestFirst,
            TaskPicker::SmallestFirst,
        ] {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut queue = TaskQueue::new(policy);
            let mut reference: Vec<Task> = Vec::new();
            let mut next_id = 0u64;
            for step in 0..300 {
                if rng.gen_bool(0.55) {
                    // Mid-run insert: a freshly arriving task with a random
                    // weight (tie-heavy on purpose: only 4 distinct values).
                    let t = Task::new(TaskId(next_id), rng.gen_range(1..=4));
                    next_id += 1;
                    queue.push(t);
                    reference.push(t);
                } else {
                    let expected = policy
                        .pick_reference(&reference)
                        .map(|i| reference.remove(i));
                    prop_assert_eq!(queue.pop(), expected, "policy {:?} step {}", policy, step);
                }
                prop_assert_eq!(
                    queue.total_weight(),
                    reference.iter().map(|t| t.weight()).sum::<u64>()
                );
                prop_assert_eq!(queue.len(), reference.len());
            }
            // Drain: the suffix order must also agree.
            while let Some(popped) = queue.pop() {
                let expected = policy
                    .pick_reference(&reference)
                    .map(|i| reference.remove(i));
                prop_assert_eq!(Some(popped), expected, "drain under policy {:?}", policy);
            }
            prop_assert!(reference.is_empty());
        }
    }

    /// Theorem 3 bound, property-style: with the d·w_max padding, after
    /// enough rounds the max-min discrepancy is at most 2·d + 2 (tokens) on
    /// every sampled graph, and no dummy tokens are created.
    #[test]
    fn alg1_theorem3_bound_random_instances(
        graph in small_graph(),
        extra in 1u64..200,
    ) {
        let n = graph.node_count();
        let d = graph.max_degree() as u64;
        let speeds = Speeds::uniform(n);
        let mut counts = vec![d; n];
        counts[0] += extra;
        let initial = InitialLoad::from_token_counts(counts);
        let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        // Run generously past the continuous balancing time for these sizes.
        let rounds = 400 + 20 * graph.node_count();
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1.run(rounds);
        prop_assert_eq!(alg1.dummy_created(), 0);
        if alg1.continuous().is_balanced(1.0) {
            let bound = 2.0 * d as f64 + 2.0;
            let max_min = metrics::max_min_discrepancy(&alg1.loads(), &speeds);
            prop_assert!(max_min <= bound + 1e-9, "{} > {}", max_min, bound);
        }
    }
}

/// The continuous twin inside Algorithm 1 really is the same process as a
/// stand-alone continuous runner (spot check, not a proptest: exact equality
/// of trajectories).
#[test]
fn twin_matches_standalone_continuous_run() {
    let graph = generators::hypercube(4).unwrap();
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);
    let mut counts = vec![4u64; n];
    counts[0] += 100;
    let initial = InitialLoad::from_token_counts(counts);

    let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
    let mut standalone = ContinuousRunner::new(fos, initial.load_vector_f64());
    let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
    let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();

    for _ in 0..50 {
        standalone.step();
        alg1.step();
        for (a, b) in standalone.loads().iter().zip(alg1.continuous().loads()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
    assert_eq!(standalone.process().name(), "fos");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot round-trip at the driver level: checkpoint a dynamic run at
    /// EVERY round (cadence 1; the rotating file is copied aside between
    /// rounds), then capture → restore → run-to-end must reproduce the full
    /// result document — trajectory included — from every checkpoint round,
    /// at shard counts 1, 2 and 7, for any seed and engine combo.
    #[test]
    fn resume_from_every_checkpoint_round_is_trajectory_identical(
        seed in any::<u64>(),
        alg2 in any::<bool>(),
        sos in any::<bool>(),
    ) {
        use lb_bench::dynamic::Session;
        use lb_core::snapshot::{self, Snapshot};
        use lb_workloads::{
            AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec,
            Scenario, ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
        };

        let rounds = 10usize;
        let scenario = Scenario {
            name: "resume_property".into(),
            seed,
            rounds,
            sample_every: 1,
            algorithm: if alg2 { AlgorithmSpec::Alg2 } else { AlgorithmSpec::Alg1 },
            model: if sos { ModelSpec::Sos } else { ModelSpec::Fos },
            topology: TopologySpec { family: "torus".into(), target_n: 16 },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 4,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson { rate_per_node: 0.5, max_weight: 1 },
            completions: ServiceSpec::Uniform { weight_per_speed: 1 },
            churn: vec![ChurnEvent { round: 5, kind: ChurnKind::Rewire { seed: 3 } }],
            shards: 1,
            federation: 1,
        };

        let rotating = std::env::temp_dir().join(format!(
            "lb_property_resume_{}_{seed:x}_{alg2}_{sos}.jsonl",
            std::process::id()
        ));
        // The sample callback for round r fires before the checkpoint write
        // at r, so the rotating file it sees holds round r-1: copying it at
        // rounds 2..=R, plus the final file (round R), yields a snapshot of
        // every round 1..=R from one single run.
        let mut copies: Vec<Snapshot> = Vec::new();
        let reference = Session::from_scenario(&scenario)
            .checkpoint(rotating.clone(), 1)
            .run(|sample| {
                if sample.round >= 2 {
                    copies.push(snapshot::load(&rotating).expect("rotating checkpoint"));
                }
            })
            .unwrap();
        copies.push(snapshot::load(&rotating).expect("final checkpoint"));
        std::fs::remove_file(&rotating).ok();
        let doc = reference.to_json().render_pretty();

        let captured: Vec<u64> = copies.iter().map(|s| s.round).collect();
        prop_assert_eq!(captured, (1..=rounds as u64).collect::<Vec<_>>());
        for snap in copies {
            let round = snap.round;
            for shards in [1usize, 2, 7] {
                let resumed = Session::from_snapshot(snap.clone())
                    .shards(shards)
                    .run(|_| {})
                    .unwrap();
                prop_assert_eq!(
                    resumed.to_json().render_pretty(),
                    doc.clone(),
                    "resume at round {} with {} shard(s)",
                    round,
                    shards
                );
            }
        }
    }

    /// Shard-count invariance: for any graph, workload and seed, running the
    /// engine with 1, 2 or 7 shards produces exactly the same loads as the
    /// sequential engine at every round — sharding trades wall-clock time
    /// only, never results.
    #[test]
    fn shard_count_never_changes_the_trajectory(graph in small_graph(), seed in any::<u64>()) {
        use lb_core::ShardedExecutor;
        let graph = std::sync::Arc::new(graph);
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let mut counts = vec![3u64; n];
        counts[seed as usize % n] += 8 * n as u64;
        let initial = InitialLoad::from_token_counts(counts);

        let mk_alg1 = || {
            let fos = Fos::new(
                std::sync::Arc::clone(&graph),
                &speeds,
                AlphaScheme::MaxDegreePlusOne,
            )
            .unwrap();
            FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap()
        };
        let mk_alg2 = || {
            let fos = Fos::new(
                std::sync::Arc::clone(&graph),
                &speeds,
                AlphaScheme::MaxDegreePlusOne,
            )
            .unwrap();
            RandomizedImitation::new(fos, &initial, speeds.clone(), seed).unwrap()
        };

        let mut seq1 = mk_alg1();
        let mut seq2 = mk_alg2();
        let mut sharded1: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&s| (mk_alg1(), ShardedExecutor::new(s)))
            .collect();
        let mut sharded2: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&s| (mk_alg2(), ShardedExecutor::new(s)))
            .collect();
        for round in 0..40 {
            seq1.step();
            seq2.step();
            for (engine, exec) in &mut sharded1 {
                engine.step_sharded(exec);
                prop_assert_eq!(
                    seq1.loads(),
                    engine.loads(),
                    "alg1 shards={} round {}",
                    exec.shard_count(),
                    round
                );
            }
            for (engine, exec) in &mut sharded2 {
                engine.step_sharded(exec);
                prop_assert_eq!(
                    seq2.loads(),
                    engine.loads(),
                    "alg2 shards={} round {}",
                    exec.shard_count(),
                    round
                );
            }
        }
    }
}
